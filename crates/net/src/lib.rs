//! igp-net — minimal mio-style readiness substrate for the serving daemon.
//!
//! Three pieces, all std-only (syscalls bound directly in the private
//! `sys` module, same offline stand-in discipline as the `vendor/` crates):
//!
//! * [`Poller`] — level-triggered readiness selector: `epoll(7)` on Linux,
//!   `poll(2)` elsewhere. One loop thread registers nonblocking fds under
//!   [`Token`]s and blocks in [`Poller::poll`] until something is ready.
//! * [`Waker`] — self-pipe wakeup so *other* threads (worker pool, shutdown
//!   callers) can interrupt that blocking poll, with an atomic dedup so a
//!   burst of completions costs one wakeup.
//! * [`WorkerPool`] — small fixed thread pool the loop dispatches CPU-heavy
//!   jobs to (repartition, WAL append, snapshot), keeping the loop itself
//!   free to service thousands of idle sockets.
//!
//! The API mirrors mio's shape (`register`/`reregister`/`deregister`,
//! reusable [`Events`]) so the stand-in can be swapped for the real crate
//! when a registry mirror is available; see `vendor/README.md` for the
//! discipline. The `poll(2)` backend compiles and is unit-tested on Linux
//! too, so CI proves both paths.

#[cfg(target_os = "linux")]
pub(crate) mod epoll;
mod event;
mod poller;
#[cfg_attr(target_os = "linux", allow(dead_code))]
pub(crate) mod pollset;
mod pool;
pub mod signal;
mod sys;
mod waker;

pub use event::{Event, Events, Interest, Token};
pub use poller::Poller;
pub use pool::{PoolHook, WorkerPool};
pub use waker::Waker;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::{AsRawFd, RawFd};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Both selector backends behind one face so each test body runs twice.
    trait Sel {
        fn register(&self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()>;
        fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()>;
        fn deregister(&self, fd: RawFd) -> std::io::Result<()>;
        fn poll(
            &mut self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> std::io::Result<()>;
    }

    #[cfg(target_os = "linux")]
    impl Sel for crate::epoll::Selector {
        fn register(&self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
            crate::epoll::Selector::register(self, fd, token, interest)
        }
        fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
            crate::epoll::Selector::reregister(self, fd, token, interest)
        }
        fn deregister(&self, fd: RawFd) -> std::io::Result<()> {
            crate::epoll::Selector::deregister(self, fd)
        }
        fn poll(
            &mut self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> std::io::Result<()> {
            crate::epoll::Selector::poll(self, out, cap, timeout)
        }
    }

    impl Sel for crate::pollset::Selector {
        fn register(&self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
            crate::pollset::Selector::register(self, fd, token, interest)
        }
        fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> std::io::Result<()> {
            crate::pollset::Selector::reregister(self, fd, token, interest)
        }
        fn deregister(&self, fd: RawFd) -> std::io::Result<()> {
            crate::pollset::Selector::deregister(self, fd)
        }
        fn poll(
            &mut self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> std::io::Result<()> {
            crate::pollset::Selector::poll(self, out, cap, timeout)
        }
    }

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn readiness_roundtrip(sel: &mut dyn Sel) {
        let (mut client, server) = tcp_pair();
        server.set_nonblocking(true).unwrap();
        let fd = server.as_raw_fd();
        sel.register(fd, 7, Interest::READABLE).unwrap();
        let mut out = Vec::new();

        // Nothing to read yet → timeout path.
        sel.poll(&mut out, 8, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(out.is_empty(), "spurious readiness on idle socket");

        client.write_all(b"x").unwrap();
        sel.poll(&mut out, 8, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token().0, 7);
        assert!(out[0].is_readable());
        assert!(!out[0].is_writable());

        // Level-triggered: unread data re-fires.
        sel.poll(&mut out, 8, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(out.len(), 1, "level-triggered readiness must re-fire");

        // Add writable interest: a fresh socket's send buffer is writable.
        sel.reregister(fd, 9, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        sel.poll(&mut out, 8, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token().0, 9, "reregister must swap the token");
        assert!(out[0].is_readable() && out[0].is_writable());

        sel.deregister(fd).unwrap();
        sel.poll(&mut out, 8, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(out.is_empty(), "deregistered fd still firing");
    }

    fn hup_is_readable(sel: &mut dyn Sel) {
        let (client, server) = tcp_pair();
        server.set_nonblocking(true).unwrap();
        let fd = server.as_raw_fd();
        sel.register(fd, 1, Interest::READABLE).unwrap();
        drop(client);
        let mut out = Vec::new();
        sel.poll(&mut out, 8, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(out.len(), 1);
        assert!(
            out[0].is_readable(),
            "peer close must surface as readable so the loop reads EOF"
        );
        sel.deregister(fd).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_readiness_roundtrip() {
        readiness_roundtrip(&mut crate::epoll::Selector::new().unwrap());
    }

    #[test]
    fn pollset_readiness_roundtrip() {
        readiness_roundtrip(&mut crate::pollset::Selector::new().unwrap());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_hup_is_readable() {
        hup_is_readable(&mut crate::epoll::Selector::new().unwrap());
    }

    #[test]
    fn pollset_hup_is_readable() {
        hup_is_readable(&mut crate::pollset::Selector::new().unwrap());
    }

    #[test]
    fn pollset_duplicate_register_rejected() {
        let sel = crate::pollset::Selector::new().unwrap();
        let (_client, server) = tcp_pair();
        let fd = server.as_raw_fd();
        sel.register(fd, 1, Interest::READABLE).unwrap();
        assert!(Sel::register(&sel, fd, 2, Interest::READABLE).is_err());
        assert!(sel.deregister(fd).is_ok());
        assert!(sel.deregister(fd).is_err());
    }

    #[test]
    fn waker_unblocks_poll_from_another_thread() {
        let mut poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new(&poller, Token(0)).unwrap());
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poller
            .poll(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "wake did not land"
        );
        assert_eq!(events.len(), 1);
        assert_eq!(events.iter().next().unwrap().token(), Token(0));
        waker.drain();
        t.join().unwrap();

        // Drained: the next poll must time out, not spin on a stale byte.
        poller
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "waker byte not drained");
    }

    #[test]
    fn waker_dedups_bursts() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, Token(0)).unwrap();
        for _ in 0..1000 {
            waker.wake();
        }
        let mut events = Events::with_capacity(8);
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        waker.drain();
        // 1000 wakes collapse to one pipe byte → one drained wakeup.
        poller
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "burst of wakes left residue in the pipe");
    }

    #[test]
    fn waker_after_drain_fires_again() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, Token(3)).unwrap();
        waker.wake();
        let mut events = Events::with_capacity(8);
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        waker.drain();
        waker.wake();
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "post-drain wake was lost");
    }

    /// Regression: a `wake()` landing between drain's flag-clear and its
    /// pipe read must never kill the waker. The old greedy multi-byte
    /// drain could consume the racing wake's byte, leaving `pending ==
    /// true` over an empty pipe — after which every `wake()` is a no-op
    /// and the loop sleeps forever. Hammer the interleaving, then prove
    /// a fresh wake still fires.
    #[test]
    fn waker_survives_wake_racing_drain() {
        let mut poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new(&poller, Token(0)).unwrap());
        let w = Arc::clone(&waker);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let d = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            for _ in 0..20_000 {
                w.wake();
                std::hint::spin_loop();
            }
            d.store(true, Ordering::SeqCst);
        });
        // Drain as fast as fires arrive (drain ONLY on a fire: its
        // one-byte read assumes readability), maximizing store/read vs
        // swap/write interleavings.
        let mut events = Events::with_capacity(8);
        loop {
            poller
                .poll(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            if !events.is_empty() {
                waker.drain();
            } else if done.load(Ordering::SeqCst) {
                break; // producer finished and the pipe is empty
            }
        }
        t.join().unwrap();
        // The waker must still be alive.
        waker.wake();
        poller
            .poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(events.len(), 1, "wake after a drain race was lost");
        waker.drain();
    }

    #[test]
    fn pool_runs_jobs_and_join_drains() {
        let pool = WorkerPool::new(3, "test-pool");
        assert_eq!(pool.workers(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            assert!(pool.execute(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.join();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            100,
            "join must drain the queue"
        );
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = WorkerPool::new(1, "panic-pool");
        pool.execute(Box::new(|| panic!("job blew up")));
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        pool.join();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            1,
            "worker died with the panicking job"
        );
    }

    /// The liveness hook sees a balanced busy/idle pair per job, on the
    /// executing worker's index — including around a panicking job.
    #[test]
    fn pool_hook_brackets_every_job() {
        struct CountingHook {
            busy: [AtomicUsize; 2],
            idle: [AtomicUsize; 2],
        }
        impl PoolHook for CountingHook {
            fn busy(&self, worker: usize) {
                self.busy[worker].fetch_add(1, Ordering::SeqCst);
            }
            fn idle(&self, worker: usize) {
                self.idle[worker].fetch_add(1, Ordering::SeqCst);
            }
        }
        let hook = Arc::new(CountingHook {
            busy: [AtomicUsize::new(0), AtomicUsize::new(0)],
            idle: [AtomicUsize::new(0), AtomicUsize::new(0)],
        });
        let pool = WorkerPool::with_hook(2, "hook-pool", Some(hook.clone()));
        for i in 0..40 {
            if i % 10 == 3 {
                pool.execute(Box::new(|| panic!("hooked panic")));
            } else {
                pool.execute(Box::new(|| {}));
            }
        }
        pool.join();
        let busy: usize = hook.busy.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        let idle: usize = hook.idle.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        assert_eq!(busy, 40, "one busy per job");
        assert_eq!(idle, 40, "one idle per job, panics included");
    }

    #[test]
    fn pool_shared_across_threads_rejects_after_shutdown() {
        let pool = Arc::new(WorkerPool::new(2, "shared-pool"));
        let done = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let d = Arc::clone(&done);
                        pool.execute(Box::new(move || {
                            d.fetch_add(1, Ordering::SeqCst);
                        }));
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let pool = Arc::try_unwrap(pool).ok().expect("sole owner");
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn interest_algebra() {
        let rw = Interest::READABLE | Interest::WRITABLE;
        assert!(rw.is_readable() && rw.is_writable());
        let r = rw.remove(Interest::WRITABLE);
        assert!(r.is_readable() && !r.is_writable());
        assert!(r.remove(Interest::READABLE).is_empty());
    }
}
