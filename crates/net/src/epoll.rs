//! Linux selector: a thin, level-triggered wrapper over `epoll(7)`.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

use crate::event::{Event, Interest};
use crate::sys;

pub(crate) struct Selector {
    ep: OwnedFd,
    /// Kernel-filled scratch; sized lazily to the caller's `Events` capacity.
    scratch: Vec<sys::epoll_event>,
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// Deliberately no EPOLLRDHUP: a half-closed peer would level-trigger every
// wait even when the loop has parked the connection (Interest::NONE), and a
// requested-readable socket already reports EOF through EPOLLIN.
fn interest_bits(interest: Interest) -> u32 {
    let mut ev = 0;
    if interest.is_readable() {
        ev |= sys::EPOLLIN;
    }
    if interest.is_writable() {
        ev |= sys::EPOLLOUT;
    }
    ev
}

impl Selector {
    pub(crate) fn new() -> io::Result<Selector> {
        let fd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Selector {
            ep: unsafe { OwnedFd::from_raw_fd(fd) },
            scratch: Vec::new(),
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut ev = sys::epoll_event {
            events: interest_bits(interest),
            data: token as u64,
        };
        cvt(unsafe { sys::epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    pub(crate) fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    pub(crate) fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL but must be non-null on
        // kernels older than 2.6.9; pass a zeroed one unconditionally.
        let mut ev = sys::epoll_event { events: 0, data: 0 };
        cvt(unsafe { sys::epoll_ctl(self.ep.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, &mut ev) })
            .map(|_| ())
    }

    pub(crate) fn poll(
        &mut self,
        out: &mut Vec<Event>,
        capacity: usize,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        out.clear();
        self.scratch
            .resize(capacity, sys::epoll_event { events: 0, data: 0 });
        let n = unsafe {
            sys::epoll_wait(
                self.ep.as_raw_fd(),
                self.scratch.as_mut_ptr(),
                capacity as i32,
                sys::timeout_ms(timeout),
            )
        };
        let n = match cvt(n) {
            Ok(n) => n as usize,
            // A signal cut the wait short; the caller's loop re-derives its
            // timers every iteration, so an empty batch is the right answer.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for slot in &self.scratch[..n] {
            // Copy packed fields by value; taking references would be UB on
            // the x86 packed layout.
            let bits = { slot.events };
            let data = { slot.data };
            out.push(Event {
                token: data as usize,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & sys::EPOLLERR != 0,
                hup: bits & sys::EPOLLHUP != 0,
            });
        }
        Ok(())
    }
}
