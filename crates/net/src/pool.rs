//! [`WorkerPool`]: a small fixed pool for CPU-heavy jobs off the event loop.
//!
//! Built on `Mutex<VecDeque> + Condvar` rather than the vendored crossbeam
//! channel: that stand-in wraps `std::sync::mpsc`, which is single-consumer,
//! and a pool needs N consumers on one queue.
//!
//! The pool itself carries no observability state: jobs are opaque
//! closures, so callers that need per-request context on the worker
//! (trace ids, log prefixes, enqueue timestamps) capture it in the
//! closure and re-establish it as the job's first act. `igp-service`
//! relies on this to propagate request traces loop → worker without
//! the pool growing an `igp-obs` dependency. The one exception is
//! per-*worker* (not per-job) liveness: a [`PoolHook`] installed at
//! construction is told which worker index goes busy/idle around each
//! job — something a job closure cannot know — so the service's stall
//! watchdog can stamp one heartbeat cell per worker.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Observes worker liveness transitions. `busy` fires on the worker
/// thread immediately before each job, `idle` immediately after it
/// (panicking jobs included — the pool's `catch_unwind` sits inside
/// the pair). Implementations must be cheap and non-blocking; they run
/// on the hot dispatch path of every job.
pub trait PoolHook: Send + Sync {
    /// Worker `worker` picked up a job.
    fn busy(&self, worker: usize);
    /// Worker `worker` finished its job and is parked again.
    fn idle(&self, worker: usize);
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// Fixed-size worker pool. Jobs run FIFO; a panicking job is contained
/// (`catch_unwind`) so the worker survives — poisoned per-session locks are
/// the caller's typed-error concern, not the pool's.
///
/// [`WorkerPool::join`] drains every queued job before the workers exit, so
/// "enqueue shutdown, then join" guarantees all prior work completed.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (minimum 1) named `{name}-{i}`.
    pub fn new(workers: usize, name: &str) -> WorkerPool {
        WorkerPool::with_hook(workers, name, None)
    }

    /// Like [`WorkerPool::new`], with an optional liveness hook called
    /// around every job (see [`PoolHook`]).
    pub fn with_hook(workers: usize, name: &str, hook: Option<Arc<dyn PoolHook>>) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let hook = hook.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&shared, i, hook.as_deref()))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queue a job. Returns `false` (job dropped) if `join` already ran.
    pub fn execute(&self, job: Job) -> bool {
        let mut state = lock(&self.shared.state);
        if state.shutdown {
            return false;
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.cv.notify_one();
        true
    }

    /// Jobs currently queued (not those mid-execution).
    pub fn queued(&self) -> usize {
        lock(&self.shared.state).jobs.len()
    }

    /// Drain the queue, stop the workers, and join them.
    pub fn join(mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Same semantics as `join` for the path where the pool is dropped
        // without an explicit join (e.g. the loop thread unwinding).
        lock(&self.shared.state).shutdown = true;
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn lock(m: &Mutex<State>) -> std::sync::MutexGuard<'_, State> {
    // State holds no invariants a panicked job could have broken mid-update
    // (jobs run outside the lock), so poison is safe to clear.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn worker_loop(shared: &Shared, worker: usize, hook: Option<&dyn PoolHook>) {
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.cv.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        };
        if let Some(h) = hook {
            h.busy(worker);
        }
        let _ = catch_unwind(AssertUnwindSafe(job));
        if let Some(h) = hook {
            h.idle(worker);
        }
    }
}
