//! Raw syscall surface for the poller.
//!
//! Offline stand-in discipline (see `vendor/README.md`): the container has no
//! crates.io mirror, so instead of the `libc` crate this module declares the
//! handful of bindings the poller needs directly against the platform C
//! library. Constants and struct layouts follow the Linux UAPI headers
//! (`<sys/epoll.h>`, `<poll.h>`); they are `pub(crate)` so the typed wrappers
//! in [`crate::epoll`] / [`crate::pollset`] are the only consumers.

#![allow(non_camel_case_types)]

use std::os::raw::{c_int, c_ulong};

pub(crate) type nfds_t = c_ulong;

// ---------------------------------------------------------------------------
// epoll (Linux only)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub(crate) const EPOLL_CLOEXEC: c_int = 0o2000000;
#[cfg(target_os = "linux")]
pub(crate) const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
pub(crate) const EPOLL_CTL_MOD: c_int = 3;

#[cfg(target_os = "linux")]
pub(crate) const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
pub(crate) const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
pub(crate) const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
pub(crate) const EPOLLHUP: u32 = 0x010;

/// `struct epoll_event`. On x86/x86_64 the kernel declares it packed (the
/// 64-bit `data` field sits at offset 4); every other architecture uses
/// natural alignment. Fields are only ever copied out by value — never
/// borrowed — so the packed repr cannot produce unaligned references.
#[cfg(target_os = "linux")]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    pub(crate) fn epoll_create1(flags: c_int) -> c_int;
    pub(crate) fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub(crate) fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
}

// ---------------------------------------------------------------------------
// poll(2) (POSIX — the portable fallback selector, also unit-tested on Linux)
// ---------------------------------------------------------------------------

pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;
pub(crate) const POLLERR: i16 = 0x008;
pub(crate) const POLLHUP: i16 = 0x010;

// On Linux the poll(2) backend is exercised only by unit tests (epoll is the
// production selector), so its symbols look dead to release builds there.
#[cfg_attr(target_os = "linux", allow(dead_code))]
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct pollfd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

extern "C" {
    #[cfg_attr(target_os = "linux", allow(dead_code))]
    pub(crate) fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
}

/// Clamp an optional wait to the millisecond argument `epoll_wait`/`poll`
/// expect: `None` blocks forever (-1), sub-millisecond waits round *up* so a
/// 100µs timer does not degenerate into a busy spin at 0ms.
pub(crate) fn timeout_ms(timeout: Option<std::time::Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let mut ms = d.as_millis();
            if d.subsec_nanos() % 1_000_000 != 0 {
                ms += 1;
            }
            ms.min(c_int::MAX as u128) as c_int
        }
    }
}
