//! Distributed dense simplex (column decomposition over SPMD ranks).
//!
//! The paper's parallel implementation hinges on the observation that the
//! dense simplex parallelizes naturally: each processor owns a strided
//! subset of tableau columns; one iteration is
//!
//! 1. local scan for the best entering column → global arg-min reduce,
//! 2. the owner broadcasts the entering column (`m + 1` words),
//! 3. everyone runs the identical ratio test on the replicated RHS,
//! 4. everyone rank-1-updates its local columns.
//!
//! The arithmetic mirrors `igp-lp`'s sequential tableau operation for
//! operation (same normalization, same update association), so the pivot
//! sequences — and therefore the solutions — are identical; the point of
//! this twin is the *cost structure* under the CM-5 model.

use igp_lp::{Cmp, LpError, LpModel, Sense, SimplexOptions, SimplexStats};
use igp_runtime::Executor;

/// Outcome of a collective solve (identical on every rank).
#[derive(Clone, Debug)]
pub struct ParallelLpSolution {
    /// Optimal structural variable values.
    pub x: Vec<f64>,
    /// Objective in the model's sense.
    pub objective: f64,
    /// Pivot counters.
    pub stats: SimplexStats,
}

struct DistTableau {
    /// Locally owned columns: (global index, m entries).
    cols: Vec<(usize, Vec<f64>)>,
    /// Reduced cost per local column (aligned with `cols`).
    red: Vec<f64>,
    /// Replicated right-hand side.
    rhs: Vec<f64>,
    /// Replicated basis (column id per row).
    basis: Vec<usize>,
    /// Replicated row-active flags.
    active: Vec<bool>,
    /// Full cost vector (replicated; phase-dependent).
    cost: Vec<f64>,
    n_struct: usize,
    n_art: usize,
    ncols: usize,
    eps: f64,
}

/// Solve `model` collectively; all ranks receive the same result.
///
/// Generic over the [`Executor`] substrate: the pivot sequence depends
/// only on rank-order-deterministic collectives, so every backend (and
/// the sequential twin in `igp-lp`) performs the identical pivots.
pub fn parallel_simplex<E: Executor>(
    ctx: &mut E,
    model: &LpModel,
    opts: SimplexOptions,
) -> Result<ParallelLpSolution, LpError> {
    let mut t = build(ctx, model, opts.eps);
    let m = t.rhs.len();
    let mut stats = SimplexStats {
        rows: m,
        cols: t.ncols,
        ..Default::default()
    };

    // Phase 1: minimize artificials.
    if t.n_art > 0 {
        let mut c1 = vec![0.0; t.ncols];
        for j in t.ncols - t.n_art..t.ncols {
            c1[j] = 1.0;
        }
        t.cost = c1;
        price_out(ctx, &mut t);
        stats.phase1_iters = run_loop(ctx, &mut t, &opts, true)?;
        let infeas: f64 = (0..m)
            .filter(|&i| t.active[i])
            .map(|i| t.cost[t.basis[i]] * t.rhs[i])
            .sum();
        let scale = t.rhs.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        if infeas > 1e-7 * (1.0 + scale) {
            return Err(LpError::Infeasible);
        }
        expel_artificials(ctx, &mut t);
    }

    // Phase 2.
    let flip = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut c2 = vec![0.0; t.ncols];
    for (j, &c) in model.objective().iter().enumerate() {
        c2[j] = flip * c;
    }
    t.cost = c2;
    price_out(ctx, &mut t);
    stats.phase2_iters = run_loop(ctx, &mut t, &opts, false)?;

    let mut x = vec![0.0; model.num_vars()];
    for i in 0..m {
        if t.active[i] && t.basis[i] < model.num_vars() {
            x[t.basis[i]] = t.rhs[i].max(0.0);
        }
    }
    let objective = model.objective_value(&x);
    Ok(ParallelLpSolution {
        x,
        objective,
        stats,
    })
}

/// Standard-form assembly, column-wise, strided by rank.
fn build<E: Executor>(ctx: &mut E, model: &LpModel, eps: f64) -> DistTableau {
    let n = model.num_vars();
    struct Row {
        coeffs: Vec<(usize, f64)>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = model
        .constraints()
        .iter()
        .map(|c| Row {
            coeffs: c.coeffs.clone(),
            cmp: c.cmp,
            rhs: c.rhs,
        })
        .collect();
    for (i, ub) in model.upper_bounds().iter().enumerate() {
        if let Some(u) = ub {
            rows.push(Row {
                coeffs: vec![(i, 1.0)],
                cmp: Cmp::Le,
                rhs: *u,
            });
        }
    }
    for r in &mut rows {
        if r.rhs < 0.0 {
            r.rhs = -r.rhs;
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Eq => Cmp::Eq,
                Cmp::Ge => Cmp::Le,
            };
            for c in &mut r.coeffs {
                c.1 = -c.1;
            }
        }
    }
    let m = rows.len();
    let n_slack = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
    let n_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
    let ncols = n + n_slack + n_art;
    let w = ctx.size();
    let me = ctx.rank();
    // Dense local columns (strided ownership j % w == me).
    let mut cols: Vec<(usize, Vec<f64>)> =
        (me..ncols).step_by(w).map(|j| (j, vec![0.0; m])).collect();
    let local_index = |j: usize| (j - me) / w; // valid only when j % w == me
    let mut rhs = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut next_art = n + n_slack;
    for (i, r) in rows.iter().enumerate() {
        rhs[i] = r.rhs;
        for &(j, a) in &r.coeffs {
            if j % w == me {
                cols[local_index(j)].1[i] = a;
            }
        }
        match r.cmp {
            Cmp::Le => {
                if next_slack % w == me {
                    cols[local_index(next_slack)].1[i] = 1.0;
                }
                basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                if next_slack % w == me {
                    cols[local_index(next_slack)].1[i] = -1.0;
                }
                next_slack += 1;
                if next_art % w == me {
                    cols[local_index(next_art)].1[i] = 1.0;
                }
                basis[i] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                if next_art % w == me {
                    cols[local_index(next_art)].1[i] = 1.0;
                }
                basis[i] = next_art;
                next_art += 1;
            }
        }
    }
    ctx.charge((m * cols.len()) as u64);
    let red = vec![0.0; cols.len()];
    DistTableau {
        cols,
        red,
        rhs,
        basis,
        active: vec![true; m],
        cost: vec![0.0; ncols],
        n_struct: n,
        n_art,
        ncols,
        eps,
    }
}

/// Recompute local reduced costs for the current cost vector.
fn price_out<E: Executor>(ctx: &mut E, t: &mut DistTableau) {
    let m = t.rhs.len();
    for (k, (j, col)) in t.cols.iter().enumerate() {
        let mut r = t.cost[*j];
        for i in 0..m {
            if t.active[i] {
                let cb = t.cost[t.basis[i]];
                if cb != 0.0 {
                    r -= cb * col[i];
                }
            }
        }
        t.red[k] = r;
    }
    ctx.charge((m * t.cols.len()) as u64);
}

/// The simplex loop; returns the pivot count.
fn run_loop<E: Executor>(
    ctx: &mut E,
    t: &mut DistTableau,
    opts: &SimplexOptions,
    phase1: bool,
) -> Result<usize, LpError> {
    let limit = if phase1 { t.ncols } else { t.ncols - t.n_art };
    for iter in 0..opts.max_iters {
        let bland = iter >= opts.bland_after;
        // Local entering candidate.
        let mut local: (f64, u64) = (f64::INFINITY, u64::MAX);
        for (k, &(j, _)) in t.cols.iter().enumerate() {
            if j >= limit {
                continue;
            }
            let r = t.red[k];
            if r < -t.eps {
                let better = if bland {
                    (j as u64) < local.1
                } else {
                    r < local.0 || (r == local.0 && (j as u64) < local.1)
                };
                if better {
                    local = (if bland { 0.0 } else { r }, j as u64);
                }
            }
        }
        ctx.charge(t.cols.len() as u64);
        let global = ctx.allreduce(local, 3, |a, b| {
            if b.0 < a.0 || (b.0 == a.0 && b.1 < a.1) {
                b
            } else {
                a
            }
        });
        if global.1 == u64::MAX {
            return Ok(iter); // optimal
        }
        let e = global.1 as usize;
        pivot_on_column(ctx, t, e, None)?;
    }
    Err(LpError::IterationLimit)
}

/// Broadcast column `e` from its owner, run the replicated ratio test (or
/// use `forced_row`), and rank-1-update local state. Errors with
/// `Unbounded` when no ratio-test row exists.
fn pivot_on_column<E: Executor>(
    ctx: &mut E,
    t: &mut DistTableau,
    e: usize,
    forced_row: Option<usize>,
) -> Result<(), LpError> {
    let w = ctx.size();
    let me = ctx.rank();
    let m = t.rhs.len();
    let owner = e % w;
    let payload = if owner == me {
        let k = (e - me) / w;
        Some((t.cols[k].1.clone(), t.red[k]))
    } else {
        None
    };
    let (col_e, red_e) = ctx.broadcast(owner, payload, m as u64 + 1);

    // Ratio test (replicated, deterministic).
    let r = match forced_row {
        Some(r) => r,
        None => {
            let mut best: Option<(f64, usize, usize)> = None;
            for i in 0..m {
                if !t.active[i] {
                    continue;
                }
                let a = col_e[i];
                if a > t.eps {
                    let ratio = t.rhs[i] / a;
                    match best {
                        None => best = Some((ratio, t.basis[i], i)),
                        Some((br, bb, _)) => {
                            if ratio < br - t.eps || (ratio < br + t.eps && t.basis[i] < bb) {
                                best = Some((ratio, t.basis[i], i));
                            }
                        }
                    }
                }
            }
            ctx.charge(m as u64);
            match best {
                Some((_, _, i)) => i,
                None => return Err(LpError::Unbounded),
            }
        }
    };

    // Rank-1 update mirroring the sequential tableau arithmetic:
    //   prow_j = a_rj / a_re;  a_ij -= a_ie * prow_j;  red_j -= red_e * prow_j.
    let inv = 1.0 / col_e[r];
    let rhs_r = t.rhs[r] * inv;
    for i in 0..m {
        if i == r || !t.active[i] {
            continue;
        }
        let f = col_e[i];
        if f != 0.0 {
            t.rhs[i] -= f * rhs_r;
        }
    }
    t.rhs[r] = rhs_r;
    for (k, (j, col)) in t.cols.iter_mut().enumerate() {
        if *j == e {
            // The entering column becomes the unit vector e_r.
            for (i, v) in col.iter_mut().enumerate() {
                *v = if i == r { 1.0 } else { 0.0 };
            }
            t.red[k] = 0.0;
            continue;
        }
        let factor = col[r] * inv;
        if factor != 0.0 {
            for i in 0..m {
                if i == r || !t.active[i] {
                    continue;
                }
                let f = col_e[i];
                if f != 0.0 {
                    col[i] -= f * factor;
                }
            }
            col[r] = factor;
            t.red[k] -= red_e * factor;
        }
    }
    ctx.charge((m * t.cols.len()) as u64 + m as u64);
    t.basis[r] = e;
    Ok(())
}

/// Drive basic artificials out of the basis; deactivate redundant rows.
fn expel_artificials<E: Executor>(ctx: &mut E, t: &mut DistTableau) {
    let art_lo = t.ncols - t.n_art;
    for r in 0..t.rhs.len() {
        if !t.active[r] || t.basis[r] < art_lo {
            continue;
        }
        // Smallest non-artificial column with a usable entry in row r.
        let mut local = u64::MAX;
        for &(j, ref col) in &t.cols {
            if j < art_lo && col[r].abs() > 1e-7 {
                local = local.min(j as u64);
            }
        }
        ctx.charge(t.cols.len() as u64);
        let j = ctx.allreduce(local, 2, |a, b| a.min(b));
        if j == u64::MAX {
            t.active[r] = false;
        } else {
            pivot_on_column(ctx, t, j as usize, Some(r)).expect("forced pivot cannot be unbounded");
        }
    }
    let _ = t.n_struct;
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_lp::{solve, LpModel};
    use igp_runtime::{CostModel, Machine};

    /// Solve on `w` ranks and compare to the sequential solver.
    fn check_matches_sequential(model: &LpModel, w: usize) {
        let seq = solve(model).unwrap();
        let machine = Machine::new(w, CostModel::cm5());
        let (outs, _) = machine.run(|ctx| {
            parallel_simplex(ctx, model, SimplexOptions::default()).map(|s| (s.x, s.objective))
        });
        for (r, out) in outs.iter().enumerate() {
            let (x, obj) = out.as_ref().expect("parallel solve failed");
            assert!(
                (obj - seq.objective).abs() < 1e-6,
                "rank {r}: objective {obj} vs sequential {}",
                seq.objective
            );
            model.check_feasible(x, 1e-6).unwrap();
        }
    }

    fn sample_lp() -> LpModel {
        let mut m = LpModel::maximize(3);
        m.set_objective(0, 3.0);
        m.set_objective(1, 2.0);
        m.set_objective(2, 4.0);
        m.add_le(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 10.0);
        m.add_le(vec![(0, 2.0), (2, 1.0)], 8.0);
        m.add_ge(vec![(1, 1.0)], 1.0);
        m
    }

    #[test]
    fn matches_sequential_various_ranks() {
        let m = sample_lp();
        for w in [1, 2, 3, 5] {
            check_matches_sequential(&m, w);
        }
    }

    #[test]
    fn equality_and_bounds() {
        let mut m = LpModel::minimize(4);
        for i in 0..4 {
            m.set_objective(i, 1.0 + i as f64);
            m.set_upper_bound(i, 5.0);
        }
        m.add_eq(vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)], 12.0);
        m.add_ge(vec![(2, 1.0), (3, 1.0)], 3.0);
        check_matches_sequential(&m, 3);
    }

    #[test]
    fn paper_figure5_parallel() {
        let caps = [9.0, 7.0, 12.0, 10.0, 11.0, 3.0, 7.0, 9.0, 7.0, 5.0];
        let mut m = LpModel::minimize(10);
        for i in 0..10 {
            m.set_objective(i, 1.0);
            m.set_upper_bound(i, caps[i]);
        }
        m.add_eq(
            vec![
                (0, 1.0),
                (1, 1.0),
                (2, 1.0),
                (3, -1.0),
                (5, -1.0),
                (8, -1.0),
            ],
            8.0,
        );
        m.add_eq(vec![(3, 1.0), (4, 1.0), (0, -1.0), (6, -1.0)], 1.0);
        m.add_eq(
            vec![
                (5, 1.0),
                (6, 1.0),
                (7, 1.0),
                (1, -1.0),
                (4, -1.0),
                (9, -1.0),
            ],
            -1.0,
        );
        m.add_eq(vec![(8, 1.0), (9, 1.0), (2, -1.0), (7, -1.0)], -8.0);
        check_matches_sequential(&m, 4);
    }

    #[test]
    fn shared_mem_pivot_sequence_matches_simulator() {
        use igp_runtime::SharedMachine;
        let m = sample_lp();
        for w in [1usize, 2, 3, 5] {
            let (sim, _) = Machine::new(w, CostModel::cm5())
                .run(|ctx| parallel_simplex(ctx, &m, SimplexOptions::default()).unwrap());
            let (shm, _) = SharedMachine::new(w)
                .run(|ctx| parallel_simplex(ctx, &m, SimplexOptions::default()).unwrap());
            for (a, b) in sim.iter().zip(&shm) {
                assert_eq!(a.x, b.x, "w={w}");
                assert_eq!(a.objective, b.objective, "w={w}");
                assert_eq!(a.stats.phase1_iters, b.stats.phase1_iters, "w={w}");
                assert_eq!(a.stats.phase2_iters, b.stats.phase2_iters, "w={w}");
            }
        }
    }

    #[test]
    fn infeasible_detected_on_all_ranks() {
        let mut m = LpModel::minimize(1);
        m.add_le(vec![(0, 1.0)], 1.0);
        m.add_ge(vec![(0, 1.0)], 2.0);
        let (outs, _) = Machine::new(3, CostModel::cm5())
            .run(|ctx| parallel_simplex(ctx, &m, SimplexOptions::default()).err());
        assert!(outs.iter().all(|e| *e == Some(LpError::Infeasible)));
    }

    #[test]
    fn parallel_cuts_per_rank_compute_work() {
        // More ranks → less charged work per rank for the column updates.
        let m = sample_lp();
        let run = |w: usize| {
            let (_, rep) = Machine::new(w, CostModel::compute_only()).run(|ctx| {
                parallel_simplex(ctx, &m, SimplexOptions::default())
                    .unwrap()
                    .objective
            });
            rep.makespan
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(t4 < t1, "t1={t1} t4={t4}");
    }
}
