//! Core-layer metrics: repartition wall-clock per driver, simplex pivot
//! totals, coalesced-batch sizes, edge-cut before/after, from-scratch
//! signals. Registered into the global igp-obs registry (naming per
//! DESIGN.md §10.1).
//!
//! Everything here is timing and counting only — the instrumentation
//! must never influence the repartition result, which the replay
//! determinism contract requires to be a pure function of
//! (graph, partitioning, config).

use std::sync::{Arc, OnceLock};

use igp_obs::{registry, Counter, Gauge, Histogram};

/// All core-layer metric handles; one instance per process.
pub struct CoreMetrics {
    /// `igp_core_repartition_us{driver="sequential"}` — wall time of one
    /// sequential repartition.
    pub repartition_us_seq: Arc<Histogram>,
    /// `igp_core_repartition_us{driver="parallel"}`.
    pub repartition_us_par: Arc<Histogram>,
    /// `igp_core_repartitions_total{driver=…}`.
    pub repartitions_total_seq: Arc<Counter>,
    /// See [`Self::repartitions_total_seq`].
    pub repartitions_total_par: Arc<Counter>,
    /// `igp_core_pivots_total` — simplex pivots across all LP solves.
    pub pivots_total: Arc<Counter>,
    /// `igp_core_moved_vertices_total` — vertices moved by balancing +
    /// refinement (the remap cost the paper prices).
    pub moved_vertices_total: Arc<Counter>,
    /// `igp_core_coalesced_batch_deltas` — deltas folded per flush.
    pub coalesced_batch_deltas: Arc<Histogram>,
    /// `igp_core_coalesced_delta_ops` — net edit ops per flushed batch.
    pub coalesced_delta_ops: Arc<Histogram>,
    /// `igp_core_edge_cut_before` — cut entering the last repartition.
    pub edge_cut_before: Arc<Gauge>,
    /// `igp_core_edge_cut_after` — cut leaving the last repartition.
    pub edge_cut_after: Arc<Gauge>,
    /// `igp_core_scratch_signals_total` — steps that raised the paper's
    /// repartition-from-scratch signal (capped balancing infeasible).
    pub scratch_signals_total: Arc<Counter>,
}

/// The core layer's registered metric handles.
pub fn metrics() -> &'static CoreMetrics {
    static M: OnceLock<CoreMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        let rep_us = |driver: &str| {
            r.histogram(
                "igp_core_repartition_us",
                "Repartition wall time, all four phases (microseconds)",
                vec![("driver", driver.to_string())],
            )
        };
        let rep_n = |driver: &str| {
            r.counter(
                "igp_core_repartitions_total",
                "Incremental repartitions executed",
                vec![("driver", driver.to_string())],
            )
        };
        CoreMetrics {
            repartition_us_seq: rep_us("sequential"),
            repartition_us_par: rep_us("parallel"),
            repartitions_total_seq: rep_n("sequential"),
            repartitions_total_par: rep_n("parallel"),
            pivots_total: r.counter(
                "igp_core_pivots_total",
                "Simplex pivots across every LP solve",
                vec![],
            ),
            moved_vertices_total: r.counter(
                "igp_core_moved_vertices_total",
                "Vertices moved by balancing and refinement",
                vec![],
            ),
            coalesced_batch_deltas: r.histogram(
                "igp_core_coalesced_batch_deltas",
                "Queued deltas folded into one increment per flush",
                vec![],
            ),
            coalesced_delta_ops: r.histogram(
                "igp_core_coalesced_delta_ops",
                "Net edit operations in a flushed coalesced delta",
                vec![],
            ),
            edge_cut_before: r.gauge(
                "igp_core_edge_cut_before",
                "Edge cut entering the most recent repartition",
                vec![],
            ),
            edge_cut_after: r.gauge(
                "igp_core_edge_cut_after",
                "Edge cut leaving the most recent repartition",
                vec![],
            ),
            scratch_signals_total: r.counter(
                "igp_core_scratch_signals_total",
                "Steps where capped balancing gave up (from-scratch signal)",
                vec![],
            ),
        }
    })
}
