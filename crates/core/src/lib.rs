//! # igp-core — Parallel Incremental Graph Partitioning Using Linear Programming
//!
//! This crate is the primary contribution of Ou & Ranka (SC '94): keep a
//! `P`-way graph partition up to date as the graph changes incrementally,
//! using linear programming for both load balancing and cut refinement.
//! The four phases (paper Figure 1):
//!
//! 1. [`assign`] — new vertices take the partition of the nearest old
//!    vertex (multi-source BFS).
//! 2. [`layer`] — each partition is layered by distance from its boundary,
//!    producing the movability counts `λ_ij` (paper Figure 3).
//! 3. [`balance`] — an LP minimizes total movement subject to caps and
//!    balance (paper eq. 10–12), with δ-staged retries when infeasible.
//! 4. [`refine`] — an LP maximizes balance-neutral boundary migration that
//!    reduces the cut (paper eq. 14–16); iterated (IGPR).
//!
//! Drivers:
//! * [`IncrementalPartitioner`] — sequential IGP / IGPR.
//! * [`parallel::ParallelPartitioner`] — the same algorithm as an SPMD
//!   program written against `igp-runtime`'s [`Executor`](igp_runtime::Executor)
//!   abstraction, including a **distributed dense simplex** (columns
//!   partitioned across ranks), reproducing the paper's "all the steps
//!   used by our method are inherently parallel" claim. The substrate is
//!   selected by [`IgpConfig::backend`]: [`Backend::SimCm5`] for
//!   simulated CM-5 timings (figure reproduction) or
//!   [`Backend::SharedMem`] for real wall-clock execution.
//! * [`multilevel`] — the paper's future-work extension ("another option
//!   is to use a multilevel approach"): heavy-edge-matching coarsening
//!   with IGP applied on the coarse graph.
//! * [`session::IgpSession`] — the solver-loop API: owns the evolving
//!   graph + partitioning, applies successive increments and raises the
//!   paper's from-scratch signal on capped-balance infeasibility.

pub mod assign;
pub mod balance;
pub mod config;
pub mod layer;
pub mod multilevel;
pub mod obs;
pub mod parallel;
pub mod partitioner;
pub mod psimplex;
pub mod refine;
pub mod report;
pub mod session;

pub use config::{BalanceSolver, CapPolicy, IgpConfig, RefineConfig, RefineEngine};
pub use igp_runtime::Backend;
pub use parallel::ParallelPartitioner;
pub use partitioner::IncrementalPartitioner;
pub use report::IgpReport;
