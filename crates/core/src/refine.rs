//! Phase 4 — cut refinement via linear programming (paper §2.4).
//!
//! Find boundary vertices whose edges into a neighbouring partition are at
//! least as numerous as their local edges (`out(v,j) − in(v) ≥ 0`), and
//! move as many as possible **without disturbing the balance**: maximize
//! `Σ l_ij` subject to `0 ≤ l_ij ≤ b_ij` (eq. 15) and zero net flow per
//! partition (eq. 16). Iterate until the gain is small; after a few rounds
//! the inequality becomes strict (`> 0`) so zero-gain vertices stop
//! circulating (the paper's oscillation guard).
//!
//! Deviations from the paper, both documented in DESIGN.md:
//! * each vertex is counted toward its *best* pair only, so the LP's
//!   chosen moves can always be applied exactly (the paper's per-pair
//!   counts may overlap on one vertex);
//! * a whole iteration whose *measured* cut increases (possible because
//!   batch moves interact) is rolled back, making the phase monotone.

use crate::balance::LpAccounting;
use crate::config::{BalanceSolver, IgpConfig};
use igp_graph::metrics::CutMetrics;
use igp_graph::{CsrGraph, NodeId, PartId, Partitioning};
use igp_lp::{flow, LpModel, Simplex};

/// One refinement iteration.
#[derive(Clone, Debug)]
pub struct RefineIterReport {
    /// Vertices moved (0 if the LP found no augmenting circulation).
    pub moved: u64,
    /// Cut edges before this iteration.
    pub cut_before: u64,
    /// Cut edges after (equals `cut_before` if rolled back).
    pub cut_after: u64,
    /// Whether the iteration was rolled back.
    pub rolled_back: bool,
    /// LP accounting.
    pub lp: LpAccounting,
}

/// Outcome of the refinement phase.
#[derive(Clone, Debug, Default)]
pub struct RefineOutcome {
    /// Per-iteration detail.
    pub iters: Vec<RefineIterReport>,
    /// Total vertices moved (net of rollbacks).
    pub total_moved: u64,
    /// Total work units.
    pub work: u64,
}

/// A movable boundary vertex.
struct Candidate {
    v: NodeId,
    gain: i64,
}

/// Solve the circulation LP: maximize total movement under caps with zero
/// net flow at every partition.
pub fn solve_circulation(
    num_parts: usize,
    pairs: &[(PartId, PartId)],
    caps: &[u64],
    cfg: &IgpConfig,
) -> (Vec<i64>, LpAccounting) {
    match cfg.solver {
        BalanceSolver::NetworkFlow => {
            let arcs: Vec<(usize, usize, i64)> = pairs
                .iter()
                .zip(caps)
                .map(|(&(i, j), &c)| (i as usize, j as usize, c as i64))
                .collect();
            let (_, l) = flow::max_circulation(num_parts, &arcs);
            let acc = LpAccounting {
                vars: pairs.len(),
                constraints: num_parts + pairs.len(),
                pivots: 0,
                work: (pairs.len() * num_parts) as u64,
            };
            (l, acc)
        }
        BalanceSolver::DenseSimplex | BalanceSolver::BoundedSimplex => {
            let mut m = LpModel::maximize(pairs.len());
            for (k, &c) in caps.iter().enumerate() {
                m.set_objective(k, 1.0);
                m.set_upper_bound(k, c as f64);
            }
            for q in 0..num_parts {
                let mut row: Vec<(usize, f64)> = Vec::new();
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    if i as usize == q {
                        row.push((k, 1.0));
                    } else if j as usize == q {
                        row.push((k, -1.0));
                    }
                }
                if !row.is_empty() {
                    m.add_eq(row, 0.0);
                }
            }
            let sol = match cfg.solver {
                BalanceSolver::DenseSimplex => Simplex::new(cfg.simplex)
                    .solve(&m)
                    .expect("circulation LP is always feasible (l = 0)"),
                _ => igp_lp::solve_bounded_with(&m, cfg.simplex)
                    .expect("circulation LP is always feasible (l = 0)"),
            };
            let l: Vec<i64> = sol
                .x
                .iter()
                .map(|&v| {
                    let r = v.round();
                    debug_assert!((v - r).abs() < 1e-5, "non-integral circulation {v}");
                    r as i64
                })
                .collect();
            let acc = LpAccounting {
                vars: pairs.len(),
                constraints: m.num_rows_expanded(),
                pivots: sol.stats.total_iters(),
                work: (sol.stats.total_iters() * sol.stats.rows * sol.stats.cols) as u64,
            };
            (l, acc)
        }
    }
}

/// Collect per-pair candidate lists. `strict` selects `gain > 0` instead
/// of `gain ≥ 0`. Each vertex lands in its best pair only.
fn collect_candidates(
    g: &CsrGraph,
    part: &Partitioning,
    strict: bool,
) -> (Vec<(PartId, PartId)>, Vec<Vec<Candidate>>, u64) {
    let p = part.num_parts();
    let mut table: Vec<Vec<Candidate>> = Vec::new();
    let mut index: Vec<i32> = vec![-1; p * p];
    let mut pairs: Vec<(PartId, PartId)> = Vec::new();
    let mut work = 0u64;
    // Reusable per-vertex accumulation over adjacent partitions.
    let mut acc: Vec<i64> = vec![0; p];
    let mut touched: Vec<PartId> = Vec::new();
    for v in g.vertices() {
        let i = part.part_of(v);
        let mut internal: i64 = 0;
        touched.clear();
        for (u, w) in g.edges_of(v) {
            work += 1;
            let q = part.part_of(u);
            if q == i {
                internal += w as i64;
            } else {
                if acc[q as usize] == 0 {
                    touched.push(q);
                }
                acc[q as usize] += w as i64;
            }
        }
        let mut best: Option<(i64, PartId)> = None;
        for &q in &touched {
            let out = acc[q as usize];
            acc[q as usize] = 0;
            let gain = out - internal;
            match best {
                None => best = Some((gain, q)),
                Some((bg, bq)) => {
                    if gain > bg || (gain == bg && q < bq) {
                        best = Some((gain, q));
                    }
                }
            }
        }
        if let Some((gain, j)) = best {
            let ok = if strict { gain > 0 } else { gain >= 0 };
            if ok {
                let slot = &mut index[i as usize * p + j as usize];
                if *slot < 0 {
                    *slot = pairs.len() as i32;
                    pairs.push((i, j));
                    table.push(Vec::new());
                }
                table[*slot as usize].push(Candidate { v, gain });
            }
        }
    }
    // Highest-gain-first application order.
    for list in &mut table {
        list.sort_by(|a, b| b.gain.cmp(&a.gain).then(a.v.cmp(&b.v)));
    }
    (pairs, table, work)
}

/// Run the refinement phase with the configured engine, mutating `part`
/// in place.
pub fn refine(g: &CsrGraph, part: &mut Partitioning, cfg: &IgpConfig) -> RefineOutcome {
    match cfg.refine.engine {
        crate::config::RefineEngine::LpCirculation => refine_lp(g, part, cfg),
        crate::config::RefineEngine::Fm { slack } => refine_fm(g, part, cfg, slack),
    }
}

/// FM-engine wrapper (ablation E8): greedy boundary passes with a balance
/// slack, reported through the same [`RefineOutcome`] shape.
fn refine_fm(g: &CsrGraph, part: &mut Partitioning, cfg: &IgpConfig, slack: u32) -> RefineOutcome {
    let cut_before = CutMetrics::compute(g, part).total_cut_edges;
    let fm = igp_graph::fm::fm_refine(
        g,
        part,
        igp_graph::fm::FmOptions {
            max_passes: cfg.refine.max_iters,
            balance_slack: slack,
            strict_gain: true,
        },
    );
    let cut_after = CutMetrics::compute(g, part).total_cut_edges;
    RefineOutcome {
        iters: vec![RefineIterReport {
            moved: fm.moved,
            cut_before,
            cut_after,
            rolled_back: false,
            lp: LpAccounting::default(),
        }],
        total_moved: fm.moved,
        work: fm.passes as u64 * 2 * g.num_edges() as u64,
    }
}

/// The paper's iterative LP-circulation refinement.
fn refine_lp(g: &CsrGraph, part: &mut Partitioning, cfg: &IgpConfig) -> RefineOutcome {
    let mut out = RefineOutcome::default();
    let mut cut_before = CutMetrics::compute(g, part).total_cut_edges;
    for it in 0..cfg.refine.max_iters {
        let strict = it >= cfg.refine.strict_after;
        let (pairs, table, scan_work) = collect_candidates(g, part, strict);
        out.work += scan_work;
        if pairs.is_empty() {
            break;
        }
        let mut caps: Vec<u64> = table.iter().map(|t| t.len() as u64).collect();
        // Damped application: if the whole batch increases the measured
        // cut (moves interact), roll back, halve the circulation caps and
        // re-solve — small batches are monotone in the limit.
        let mut success = false;
        let mut rolled_back_final = false;
        for _attempt in 0..5 {
            let (l, acc) = solve_circulation(cfg.num_parts, &pairs, &caps, cfg);
            out.work += acc.work;
            let planned: u64 = l.iter().map(|&x| x.max(0) as u64).sum();
            if planned == 0 {
                out.iters.push(RefineIterReport {
                    moved: 0,
                    cut_before,
                    cut_after: cut_before,
                    rolled_back: rolled_back_final,
                    lp: acc,
                });
                break;
            }
            // Apply (recording undo information).
            let mut undo: Vec<(NodeId, PartId)> = Vec::new();
            for (k, &(i, j)) in pairs.iter().enumerate() {
                let want = l[k].max(0) as usize;
                for c in table[k].iter().take(want) {
                    undo.push((c.v, i));
                    part.move_vertex(g, c.v, j);
                }
            }
            out.work += undo.len() as u64;
            let cut_after = CutMetrics::compute(g, part).total_cut_edges;
            out.work += g.num_edges() as u64;
            if cut_after > cut_before {
                for &(v, back) in undo.iter().rev() {
                    part.move_vertex(g, v, back);
                }
                rolled_back_final = true;
                for (c, &lv) in caps.iter_mut().zip(&l) {
                    *c = (lv.max(0) as u64) / 2;
                }
                if caps.iter().all(|&c| c == 0) {
                    out.iters.push(RefineIterReport {
                        moved: 0,
                        cut_before,
                        cut_after: cut_before,
                        rolled_back: true,
                        lp: acc,
                    });
                    break;
                }
                continue;
            }
            out.total_moved += undo.len() as u64;
            out.iters.push(RefineIterReport {
                moved: undo.len() as u64,
                cut_before,
                cut_after,
                rolled_back: false,
                lp: acc,
            });
            cut_before = cut_after;
            success = true;
            break;
        }
        if !success {
            break;
        }
        let last = out.iters.last().unwrap();
        if last.cut_before - last.cut_after < cfg.refine.min_gain {
            break;
        }
    }
    out
}

#[cfg(test)]
// Grid indices are written `row * side + col` even when the row is 0,
// keeping the 2-D layout visible.
#[allow(clippy::identity_op, clippy::erasing_op)]
mod tests {
    use super::*;
    use igp_graph::generators;

    fn cfg(p: usize) -> IgpConfig {
        IgpConfig::new(p)
    }

    #[test]
    fn paper_figure8_circulation() {
        let pairs: Vec<(PartId, PartId)> = vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 0),
            (1, 2),
            (2, 0),
            (2, 1),
            (2, 3),
            (3, 0),
            (3, 2),
        ];
        let caps = vec![1u64, 1, 1, 2, 1, 0, 1, 1, 2, 1];
        for solver in [
            BalanceSolver::DenseSimplex,
            BalanceSolver::BoundedSimplex,
            BalanceSolver::NetworkFlow,
        ] {
            let mut c = cfg(4);
            c.solver = solver;
            let (l, _) = solve_circulation(4, &pairs, &caps, &c);
            // LP optimum is 9 (the paper prints 8 — see EXPERIMENTS.md E5).
            assert_eq!(l.iter().sum::<i64>(), 9, "{solver:?}");
            // Zero net flow per partition.
            let mut net = [0i64; 4];
            for (k, &(i, j)) in pairs.iter().enumerate() {
                net[i as usize] += l[k];
                net[j as usize] -= l[k];
            }
            assert_eq!(net, [0, 0, 0, 0], "{solver:?}");
        }
    }

    #[test]
    fn refinement_preserves_balance_exactly() {
        // Round-robin on a grid interleaves columns: zero-gain moves only,
        // so refinement may churn or do nothing — but it must NEVER change
        // partition sizes or worsen the cut.
        let g = generators::grid(8, 8);
        let mut part = Partitioning::round_robin(&g, 4);
        let sizes_before = part.counts().to_vec();
        let cut0 = CutMetrics::compute(&g, &part).total_cut_edges;
        let _ = refine(&g, &mut part, &cfg(4));
        let cut1 = CutMetrics::compute(&g, &part).total_cut_edges;
        assert_eq!(part.counts(), &sizes_before[..]);
        assert!(cut1 <= cut0);
        part.validate(&g).unwrap();
    }

    #[test]
    fn refinement_monotone_per_iteration() {
        let g = generators::grid(10, 10);
        let mut part = Partitioning::round_robin(&g, 5);
        let outcome = refine(&g, &mut part, &cfg(5));
        for it in &outcome.iters {
            assert!(it.cut_after <= it.cut_before);
        }
    }

    #[test]
    fn refinement_noop_on_optimal_split() {
        // A path split contiguously has cut 1 — nothing can improve it.
        let g = generators::path(10);
        let assign: Vec<PartId> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        let mut part = Partitioning::from_assignment(&g, 2, assign.clone());
        let _ = refine(&g, &mut part, &cfg(2));
        let cut = CutMetrics::compute(&g, &part).total_cut_edges;
        assert_eq!(cut, 1);
        assert_eq!(part.count(0), 5);
    }

    #[test]
    fn strict_mode_excludes_zero_gain() {
        let g = generators::cycle(8);
        let part = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        // Boundary vertices on a cycle have gain 0 (1 out, 1 in).
        let (pairs_loose, _, _) = collect_candidates(&g, &part, false);
        let (pairs_strict, _, _) = collect_candidates(&g, &part, true);
        assert!(!pairs_loose.is_empty());
        assert!(pairs_strict.is_empty());
    }

    #[test]
    fn candidates_assigned_to_best_pair() {
        // Vertex 0 (part 0): 1 edge to part 1, 2 edges to part 2, 0 local.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let part = Partitioning::from_assignment(&g, 3, vec![0, 1, 2, 2]);
        let (pairs, table, _) = collect_candidates(&g, &part, false);
        // Vertex 0's best pair is (0, 2) with gain 2.
        let k = pairs.iter().position(|&p| p == (0, 2)).unwrap();
        assert!(table[k].iter().any(|c| c.v == 0 && c.gain == 2));
        // It must NOT also appear under (0, 1).
        if let Some(k1) = pairs.iter().position(|&p| p == (0, 1)) {
            assert!(!table[k1].iter().any(|c| c.v == 0));
        }
    }

    #[test]
    fn refinement_improves_jagged_boundary() {
        // Construct a 2-partition grid with one vertex "dented" into the
        // other side; refinement cannot fix it alone (it would unbalance),
        // but paired with a reciprocal dent it can swap both.
        let g = generators::grid(4, 8);
        let mut assign: Vec<PartId> = (0..32).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        // Dent: (row 0, col 4) → part 0's side but assign to 0? swap two.
        assign[0 * 8 + 4] = 0; // a part-1-side vertex assigned to 0
        assign[3 * 8 + 3] = 1; // a part-0-side vertex assigned to 1
        let mut part = Partitioning::from_assignment(&g, 2, assign);
        let cut0 = CutMetrics::compute(&g, &part).total_cut_edges;
        let outcome = refine(&g, &mut part, &cfg(2));
        let cut1 = CutMetrics::compute(&g, &part).total_cut_edges;
        assert!(
            cut1 < cut0,
            "refinement should fix the double dent: {cut0} -> {cut1}"
        );
        assert!(outcome.total_moved >= 2);
        assert_eq!(part.count(0), 16);
    }

    #[test]
    fn fm_engine_trades_slack_for_gain() {
        use crate::config::RefineEngine;
        // Band split with reciprocal dents; both engines should fix it,
        // but FM may use its slack while LP preserves sizes exactly.
        let g = generators::grid(8, 8);
        let mut assign: Vec<PartId> = (0..64).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        assign[0 * 8 + 4] = 0;
        assign[7 * 8 + 3] = 1;
        let base = Partitioning::from_assignment(&g, 2, assign);
        let cut0 = CutMetrics::compute(&g, &base).total_cut_edges;

        let mut lp_part = base.clone();
        let _ = refine(&g, &mut lp_part, &cfg(2));
        assert_eq!(
            lp_part.counts(),
            base.counts(),
            "LP preserves sizes exactly"
        );

        let mut fm_cfg = cfg(2);
        fm_cfg.refine.engine = RefineEngine::Fm { slack: 1 };
        let mut fm_part = base.clone();
        let _ = refine(&g, &mut fm_part, &fm_cfg);
        let cut_fm = CutMetrics::compute(&g, &fm_part).total_cut_edges;
        assert!(cut_fm <= cut0);
        // FM may deviate, but only within its slack.
        let avg_ceil = 32u32;
        assert!(fm_part.counts().iter().all(|&c| c <= avg_ceil + 1));
    }

    #[test]
    fn solvers_agree_on_total_gain() {
        // Column bands with two reciprocal "dents" — a genuinely
        // improvable configuration both solvers must fix.
        let g = generators::grid(6, 6);
        let mut assign: Vec<PartId> = (0..36).map(|v| ((v % 6) / 2) as PartId).collect();
        assign[0 * 6 + 2] = 0; // part-1 cell handed to part 0
        assign[5 * 6 + 1] = 1; // part-0 cell handed to part 1
        let base = Partitioning::from_assignment(&g, 3, assign);
        let cut0 = CutMetrics::compute(&g, &base).total_cut_edges;
        let mut cuts = Vec::new();
        for solver in [
            BalanceSolver::DenseSimplex,
            BalanceSolver::BoundedSimplex,
            BalanceSolver::NetworkFlow,
        ] {
            let mut part = base.clone();
            let mut c = cfg(3);
            c.solver = solver;
            refine(&g, &mut part, &c);
            assert_eq!(part.counts(), base.counts(), "{solver:?}");
            cuts.push(CutMetrics::compute(&g, &part).total_cut_edges);
        }
        assert!(cuts.iter().all(|&c| c < cut0), "{cuts:?} vs {cut0}");
    }
}
