//! Configuration for the incremental partitioner.

use igp_lp::SimplexOptions;
use igp_runtime::Backend;

/// How the load-balancing LP treats the `l_ij ≤ λ_ij` movement caps
/// (paper §2.3: "One approach is to relax the constraint in (11) and not
/// have `l_ij ≤ λ_ij` as a constraint").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapPolicy {
    /// Keep the caps; fall back to δ-staged balancing when infeasible
    /// (the paper's multi-stage scheme). Movement stays near boundaries.
    Strict,
    /// Drop the caps. Always feasible in one stage but "may lead to major
    /// modifications in the mapping".
    Relaxed,
}

/// Which engine solves the two LPs — the dense simplex the paper used, or
/// one of the structured alternatives the paper's footnote anticipates
/// (ablations E8/E9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceSolver {
    /// Dense two-phase simplex with cap rows expanded (the paper's solver).
    DenseSimplex,
    /// Bounded-variable simplex: caps handled natively, ~7× smaller
    /// tableau at P = 32 (the paper's "can be substantially reduced").
    BoundedSimplex,
    /// Min-cost-flow / max-circulation network solvers.
    NetworkFlow,
}

/// Which refinement algorithm IGPR runs (ablation E8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineEngine {
    /// The paper's LP circulation (eq. 14–16): preserves partition sizes
    /// *exactly*.
    LpCirculation,
    /// Greedy Fiduccia–Mattheyses boundary passes: simpler and cheaper but
    /// needs a balance slack to move anything from an exactly balanced
    /// state — the trade-off that motivates the paper's LP formulation.
    Fm {
        /// Allowed deviation above the average partition count.
        slack: u32,
    },
}

/// Refinement-phase (IGPR) parameters.
#[derive(Clone, Copy, Debug)]
pub struct RefineConfig {
    /// Maximum refinement LP rounds ("applied iteratively until the
    /// effective gain ... is small").
    pub max_iters: usize,
    /// Stop when a round improves the cut by less than this many edges.
    pub min_gain: u64,
    /// After this many rounds switch `out(v,j) − in(v) ≥ 0` to `> 0`
    /// (the paper's strict-inequality rule against zero-gain churn).
    pub strict_after: usize,
    /// Refinement algorithm.
    pub engine: RefineEngine,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_iters: 8,
            min_gain: 1,
            strict_after: 3,
            engine: RefineEngine::LpCirculation,
        }
    }
}

/// Full configuration of the incremental graph partitioner.
#[derive(Clone, Debug)]
pub struct IgpConfig {
    /// Number of partitions `P`.
    pub num_parts: usize,
    /// Cap policy for the balance LP.
    pub cap_policy: CapPolicy,
    /// Upper bound on balancing stages (the paper's constant `C`).
    pub max_stages: usize,
    /// Largest δ tried when scaling the balance RHS.
    pub max_delta: u32,
    /// Refinement parameters (used by IGPR).
    pub refine: RefineConfig,
    /// Simplex tuning.
    pub simplex: SimplexOptions,
    /// LP engine selection.
    pub solver: BalanceSolver,
    /// Execution substrate for the parallel driver
    /// ([`crate::ParallelPartitioner`]): the simulated CM-5 machine or
    /// the shared-memory backend. Ignored by the sequential driver.
    pub backend: Backend,
}

impl IgpConfig {
    /// Defaults for `P` partitions.
    pub fn new(num_parts: usize) -> Self {
        assert!(num_parts >= 1);
        IgpConfig {
            num_parts,
            cap_policy: CapPolicy::Strict,
            max_stages: 8,
            max_delta: 16,
            refine: RefineConfig::default(),
            simplex: SimplexOptions::default(),
            solver: BalanceSolver::DenseSimplex,
            backend: Backend::SimCm5,
        }
    }

    /// Builder-style substrate selection for the parallel driver.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = IgpConfig::new(32);
        assert_eq!(c.num_parts, 32);
        assert_eq!(c.cap_policy, CapPolicy::Strict);
        assert!(c.max_stages >= 1);
        assert!(c.refine.max_iters >= 1);
        assert_eq!(c.backend, Backend::SimCm5);
    }

    #[test]
    fn backend_builder() {
        let c = IgpConfig::new(4).with_backend(Backend::SharedMem);
        assert_eq!(c.backend, Backend::SharedMem);
        assert_eq!(c.num_parts, 4);
    }

    #[test]
    #[should_panic]
    fn zero_parts_rejected() {
        IgpConfig::new(0);
    }
}
