//! The sequential Incremental Graph Partitioner driver (IGP / IGPR).

use crate::assign::assign_new_vertices;
use crate::balance::balance;
use crate::config::IgpConfig;
use crate::refine::refine;
use crate::report::{IgpReport, PhaseTimings};
use igp_graph::metrics::CutMetrics;
use igp_graph::{IncrementalGraph, Partitioning};
use std::time::Instant;

/// The paper's incremental partitioner.
///
/// * `IGP` — phases 1–3 (assignment, layering, LP load balancing);
/// * `IGPR` — IGP plus the phase-4 LP refinement.
///
/// ```
/// use igp_core::{IgpConfig, IncrementalPartitioner};
/// use igp_graph::{generators, GraphDelta, Partitioning};
///
/// let g = generators::grid(8, 8);
/// let old = Partitioning::from_assignment(
///     &g, 2, (0..64).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect());
/// let delta = generators::localized_growth_delta(&g, 0, 10, 42);
/// let inc = delta.apply(&g);
///
/// let igp = IncrementalPartitioner::igpr(IgpConfig::new(2));
/// let (new_part, report) = igp.repartition(&inc, &old);
/// assert!(report.balance.balanced);
/// assert_eq!(new_part.num_vertices(), 74);
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalPartitioner {
    cfg: IgpConfig,
    with_refinement: bool,
}

impl IncrementalPartitioner {
    /// IGP: no refinement phase.
    pub fn igp(cfg: IgpConfig) -> Self {
        IncrementalPartitioner {
            cfg,
            with_refinement: false,
        }
    }

    /// IGPR: with the LP refinement phase.
    pub fn igpr(cfg: IgpConfig) -> Self {
        IncrementalPartitioner {
            cfg,
            with_refinement: true,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &IgpConfig {
        &self.cfg
    }

    /// Whether refinement runs.
    pub fn refines(&self) -> bool {
        self.with_refinement
    }

    /// Repartition the incremental graph, starting from `old_part` (a
    /// partitioning of `inc.old()`). Returns the new partitioning of
    /// `inc.new_graph()` plus a full report.
    pub fn repartition(
        &self,
        inc: &IncrementalGraph,
        old_part: &Partitioning,
    ) -> (Partitioning, IgpReport) {
        assert_eq!(
            old_part.num_vertices(),
            inc.old().num_vertices(),
            "old partitioning does not match the old graph"
        );
        assert_eq!(
            old_part.num_parts(),
            self.cfg.num_parts,
            "partition count mismatch"
        );
        let g = inc.new_graph();
        let mut timings = PhaseTimings::default();

        let t = Instant::now();
        let (assign_vec, assign_report) = assign_new_vertices(inc, old_part);
        let mut part = Partitioning::from_assignment(g, self.cfg.num_parts, assign_vec);
        timings.assign = t.elapsed();

        let t = Instant::now();
        let balance_outcome = balance(g, &mut part, &self.cfg);
        timings.balance = t.elapsed();

        let refine_outcome = if self.with_refinement {
            let t = Instant::now();
            let r = refine(g, &mut part, &self.cfg);
            timings.refine = t.elapsed();
            Some(r)
        } else {
            None
        };

        let metrics = CutMetrics::compute(g, &part);
        let report = IgpReport {
            assign: assign_report,
            balance: balance_outcome,
            refine: refine_outcome,
            timings,
            metrics,
        };
        (part, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::{generators, CsrGraph, GraphDelta, PartId};

    /// 8×8 grid in 4 vertical bands + a localized growth delta.
    fn grid_scenario(k: usize) -> (CsrGraph, Partitioning, IncrementalGraph) {
        let g = generators::grid(8, 8);
        let assign: Vec<PartId> = (0..64).map(|v| ((v % 8) / 2) as PartId).collect();
        let old = Partitioning::from_assignment(&g, 4, assign);
        let delta = generators::localized_growth_delta(&g, 7, k, 123);
        let inc = delta.apply(&g);
        (g, old, inc)
    }

    #[test]
    fn igp_balances_after_growth() {
        let (_, old, inc) = grid_scenario(20);
        let igp = IncrementalPartitioner::igp(IgpConfig::new(4));
        let (part, report) = igp.repartition(&inc, &old);
        assert!(report.balance.balanced, "{report}");
        assert_eq!(part.num_vertices(), 84);
        assert_eq!(part.counts(), &[21, 21, 21, 21]);
        assert!(report.refine.is_none());
        part.validate(inc.new_graph()).unwrap();
    }

    #[test]
    fn igpr_never_worse_than_igp() {
        let (_, old, inc) = grid_scenario(24);
        let igp = IncrementalPartitioner::igp(IgpConfig::new(4));
        let igpr = IncrementalPartitioner::igpr(IgpConfig::new(4));
        let (_, rep_plain) = igp.repartition(&inc, &old);
        let (part_r, rep_refined) = igpr.repartition(&inc, &old);
        assert!(rep_refined.metrics.total_cut_edges <= rep_plain.metrics.total_cut_edges);
        // Refinement preserves balance (88 vertices / 4 parts).
        assert_eq!(part_r.counts(), &[22, 22, 22, 22]);
    }

    #[test]
    fn deformation_is_local() {
        // Only a bounded number of *old* vertices may change partition:
        // the growth is 20 vertices, so at most ~20 surviving vertices
        // (plus slack for multi-hop flow) should move.
        let (_, old, inc) = grid_scenario(20);
        let igp = IncrementalPartitioner::igp(IgpConfig::new(4));
        let (part, _) = igp.repartition(&inc, &old);
        let moved_old = inc
            .old()
            .vertices()
            .filter(|&v| {
                let nv = inc.new_of_old(v);
                nv != igp_graph::INVALID_NODE && part.part_of(nv) != old.part_of(v)
            })
            .count();
        assert!(
            moved_old <= 40,
            "deformation too large: {moved_old} old vertices moved"
        );
    }

    #[test]
    fn empty_delta_is_identity_when_balanced() {
        let g = generators::grid(8, 8);
        let assign: Vec<PartId> = (0..64).map(|v| ((v % 8) / 2) as PartId).collect();
        let old = Partitioning::from_assignment(&g, 4, assign);
        let inc = GraphDelta::default().apply(&g);
        let igp = IncrementalPartitioner::igp(IgpConfig::new(4));
        let (part, report) = igp.repartition(&inc, &old);
        assert_eq!(part.assignment(), old.assignment());
        assert_eq!(report.total_moved(), 0);
    }

    #[test]
    fn determinism() {
        let (_, old, inc) = grid_scenario(16);
        let igp = IncrementalPartitioner::igpr(IgpConfig::new(4));
        let (a, _) = igp.repartition(&inc, &old);
        let (b, _) = igp.repartition(&inc, &old);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn vertex_deletions_supported() {
        let g = generators::grid(6, 6);
        let assign: Vec<PartId> = (0..36).map(|v| if v % 6 < 3 { 0 } else { 1 }).collect();
        let old = Partitioning::from_assignment(&g, 2, assign);
        // Delete a handful of vertices from partition 1's side and add a
        // couple on partition 0's side.
        let delta = GraphDelta {
            remove_vertices: vec![5, 11, 17],
            add_vertices: vec![1, 1],
            add_edges: vec![(0, 36, 1), (36, 37, 1)],
            remove_edges: vec![],
        };
        let inc = delta.apply(&g);
        let igp = IncrementalPartitioner::igp(IgpConfig::new(2));
        let (part, report) = igp.repartition(&inc, &old);
        assert!(report.balance.balanced);
        let n = inc.new_graph().num_vertices() as u32;
        assert_eq!(part.counts().iter().sum::<u32>(), n);
        let diff = part.count(0).abs_diff(part.count(1));
        assert!(diff <= 1, "{:?}", part.counts());
    }

    #[test]
    #[should_panic(expected = "partition count mismatch")]
    fn config_mismatch_caught() {
        let (_, old, inc) = grid_scenario(4);
        let igp = IncrementalPartitioner::igp(IgpConfig::new(8));
        let _ = igp.repartition(&inc, &old);
    }

    #[test]
    fn report_lp_accounting_present() {
        let (_, old, inc) = grid_scenario(20);
        let igp = IncrementalPartitioner::igpr(IgpConfig::new(4));
        let (_, report) = igp.repartition(&inc, &old);
        let (v, c) = report.max_lp_size();
        assert!(v > 0 && c > 0);
        assert!(report.lp_work_share() > 0.0);
        assert!(report.total_work() > 0);
    }
}
