//! The SPMD-parallel incremental partitioner (paper §1: "All the steps
//! used by our method are inherently parallel").
//!
//! Runs the identical four-phase algorithm as
//! [`crate::IncrementalPartitioner`], but as a rank-per-worker SPMD
//! program over [`igp_runtime`]:
//!
//! * partitions are owned round-robin by ranks (`q mod W`);
//! * **phase 1** is a level-synchronous distributed BFS — each rank
//!   expands the frontier of its owned partitions and claims are merged
//!   deterministically each superstep;
//! * **phase 2** layers owned partitions locally and allgathers labels;
//! * **phases 3–4** solve their LPs with the distributed dense simplex
//!   ([`crate::psimplex`]), columns strided across ranks — the paper's
//!   main parallelization claim;
//! * every compute step charges work units and every exchange pays
//!   `α + β·words`, so a [`Backend::SimCm5`] run yields simulated CM-5
//!   phase timings.
//!
//! The driver is written against [`igp_runtime::Executor`], so the same
//! rank program runs on either substrate selected by
//! [`IgpConfig::backend`]:
//!
//! * [`Backend::SimCm5`] — message passing plus the charged cost model.
//!   Graph and replicated state live behind `&` references (threads on
//!   one host), but *charged* work follows the ownership split and all
//!   replication traffic goes through real messages, so the simulated
//!   clock reflects the distributed algorithm (DESIGN.md §4,
//!   substitution 1).
//! * [`Backend::SharedMem`] — the collectives are direct slot reductions
//!   and the phase loops run data-parallel over the per-rank ownership
//!   chunks; `PhaseSim`/`SimReport` then carry measured wall-clock
//!   seconds. Collective results are rank-order deterministic, so both
//!   backends produce **bit-identical** partitions and pivot counts
//!   (pinned by `tests/backend_equiv.rs`; DESIGN.md §6).

use crate::balance::{adjacency_pairs, integer_targets, scale_surplus};
use crate::config::{CapPolicy, IgpConfig};
use crate::layer::layer_one;
use crate::psimplex::parallel_simplex;
use igp_graph::{CsrGraph, IncrementalGraph, NodeId, PartId, Partitioning, INVALID_NODE, NO_PART};
use igp_lp::{LpError, LpModel};
use igp_runtime::{Backend, CostModel, Executor, SimReport, SpmdJob};

/// Simulated seconds spent in each phase (makespan over ranks).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseSim {
    /// Phase 1 (assignment BFS).
    pub assign: f64,
    /// Phases 2+3 (layering + balance LPs, all stages).
    pub balance: f64,
    /// Phase 4 (refinement LPs).
    pub refine: f64,
}

/// Report from a parallel repartitioning run.
#[derive(Clone, Debug)]
pub struct ParallelRunReport {
    /// The substrate that executed the run.
    pub backend: Backend,
    /// Machine-level statistics (makespan = simulated `Time-p` on
    /// [`Backend::SimCm5`], measured seconds on [`Backend::SharedMem`]).
    pub sim: SimReport,
    /// Per-phase times (same unit convention as `sim`).
    pub phases: PhaseSim,
    /// Vertices moved by balancing + refinement.
    pub total_moved: u64,
    /// Balancing stages used.
    pub stages: usize,
    /// Whether balance targets were met.
    pub balanced: bool,
    /// Total simplex pivots across every collective LP solve — identical
    /// on every backend (and to the sequential driver when the scenario
    /// exercises no tie-break divergence).
    pub total_pivots: u64,
}

/// SPMD-parallel IGP/IGPR driver.
#[derive(Clone, Debug)]
pub struct ParallelPartitioner {
    cfg: IgpConfig,
    with_refinement: bool,
    workers: usize,
    cost: CostModel,
}

impl ParallelPartitioner {
    /// Parallel IGP on `workers` ranks.
    pub fn igp(cfg: IgpConfig, workers: usize) -> Self {
        Self::new(cfg, workers, false, CostModel::cm5())
    }

    /// Parallel IGPR on `workers` ranks.
    pub fn igpr(cfg: IgpConfig, workers: usize) -> Self {
        Self::new(cfg, workers, true, CostModel::cm5())
    }

    /// Full constructor. The execution substrate comes from
    /// [`IgpConfig::backend`].
    pub fn new(cfg: IgpConfig, workers: usize, refine: bool, cost: CostModel) -> Self {
        assert!(
            workers >= 1,
            "ParallelPartitioner: workers must be >= 1 (got {workers})"
        );
        assert!(
            cfg.num_parts >= 1,
            "ParallelPartitioner: num_parts must be >= 1"
        );
        ParallelPartitioner {
            cfg,
            with_refinement: refine,
            workers,
            cost,
        }
    }

    /// Number of ranks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The execution substrate this partitioner will launch on.
    pub fn backend(&self) -> Backend {
        self.cfg.backend
    }

    /// Same partitioner, different substrate.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Repartition; result is identical in quality structure to the
    /// sequential driver (same LPs, same deterministic tie-breaks).
    pub fn repartition(
        &self,
        inc: &IncrementalGraph,
        old_part: &Partitioning,
    ) -> (Partitioning, ParallelRunReport) {
        assert_eq!(
            old_part.num_parts(),
            self.cfg.num_parts,
            "partition count mismatch"
        );
        let job = RepartitionJob {
            inc,
            old_part,
            cfg: &self.cfg,
            with_refinement: self.with_refinement,
        };
        let (mut outs, sim) = self.cfg.backend.launch(self.workers, self.cost, &job);
        // All ranks compute identical state; take rank 0's copy.
        let r0 = outs.swap_remove(0);
        let part = Partitioning::from_assignment(inc.new_graph(), self.cfg.num_parts, r0.assign);
        let phases = PhaseSim {
            assign: outs.iter().map(|o| o.t_assign).fold(r0.t_assign, f64::max),
            balance: outs
                .iter()
                .map(|o| o.t_balance)
                .fold(r0.t_balance, f64::max),
            refine: outs.iter().map(|o| o.t_refine).fold(r0.t_refine, f64::max),
        };
        let report = ParallelRunReport {
            backend: self.cfg.backend,
            sim,
            phases,
            total_moved: r0.moved,
            stages: r0.stages,
            balanced: r0.balanced,
            total_pivots: r0.lp_pivots,
        };
        (part, report)
    }
}

/// The SPMD rank program, packaged for [`Backend::launch`].
struct RepartitionJob<'a> {
    inc: &'a IncrementalGraph,
    old_part: &'a Partitioning,
    cfg: &'a IgpConfig,
    with_refinement: bool,
}

impl SpmdJob for RepartitionJob<'_> {
    type Out = RankOut;

    fn run<E: Executor>(&self, exec: &mut E) -> RankOut {
        run_rank(
            exec,
            self.inc,
            self.old_part,
            self.cfg,
            self.with_refinement,
        )
    }
}

struct RankOut {
    assign: Vec<PartId>,
    t_assign: f64,
    t_balance: f64,
    t_refine: f64,
    moved: u64,
    stages: usize,
    balanced: bool,
    lp_pivots: u64,
}

fn run_rank<E: Executor>(
    ctx: &mut E,
    inc: &IncrementalGraph,
    old_part: &Partitioning,
    cfg: &IgpConfig,
    with_refinement: bool,
) -> RankOut {
    let g = inc.new_graph();
    let p = cfg.num_parts;
    let w = ctx.size();
    let me = ctx.rank();
    let owns = |q: PartId| (q as usize) % w == me;

    // ---------------- Phase 1: distributed assignment BFS ----------------
    let mut assign: Vec<PartId> = vec![NO_PART; g.num_vertices()];
    let mut claimed: Vec<bool> = vec![false; g.num_vertices()];
    let mut frontier: Vec<NodeId> = Vec::new();
    for v in g.vertices() {
        let old = inc.old_of_new(v);
        if old != INVALID_NODE {
            let q = old_part.part_of(old);
            assign[v as usize] = q;
            claimed[v as usize] = true;
            if owns(q) {
                frontier.push(v);
            }
        }
    }
    loop {
        // Expand the locally-owned frontier; claims = (vertex, partition).
        let mut claims: Vec<(NodeId, PartId)> = Vec::new();
        for &v in &frontier {
            let q = assign[v as usize];
            for &u in g.neighbors(v) {
                ctx.charge(1);
                if !claimed[u as usize] {
                    claims.push((u, q));
                }
            }
        }
        // Replicate claims everywhere; merge deterministically (min
        // partition label wins a same-level tie, as in the sequential BFS).
        let all: Vec<Vec<(NodeId, PartId)>> = ctx.allgather(claims, 2);
        let mut merged: Vec<(NodeId, PartId)> = all.into_iter().flatten().collect();
        if merged.is_empty() {
            break;
        }
        merged.sort_unstable();
        frontier.clear();
        for &(v, q) in &merged {
            ctx.charge(1);
            if !claimed[v as usize] {
                claimed[v as usize] = true;
                assign[v as usize] = q;
                if owns(q) {
                    frontier.push(v);
                }
            }
            // later duplicates have larger q (sorted) — ignored
        }
    }
    // Orphan clusters (new vertices unreachable from any survivor): rank 0
    // decides, everyone applies.
    let have_orphans = assign.contains(&NO_PART);
    if have_orphans {
        let decided: Vec<(NodeId, PartId)> = if me == 0 {
            let mut counts: Vec<u64> = vec![0; p];
            for &q in &assign {
                if q != NO_PART {
                    counts[q as usize] += 1;
                }
            }
            let orphan: Vec<bool> = assign.iter().map(|&q| q == NO_PART).collect();
            let mut out = Vec::new();
            for cluster in igp_graph::traversal::clusters_of(g, &orphan) {
                ctx.charge(cluster.len() as u64);
                let target = counts
                    .iter()
                    .enumerate()
                    .min_by_key(|&(q, &c)| (c, q))
                    .map(|(q, _)| q as PartId)
                    .unwrap();
                counts[target as usize] += cluster.len() as u64;
                out.extend(cluster.into_iter().map(|v| (v, target)));
            }
            out
        } else {
            Vec::new()
        };
        let decided = ctx.broadcast(0, if me == 0 { Some(decided) } else { None }, 8);
        for (v, q) in decided {
            assign[v as usize] = q;
        }
    }
    let t_assign = ctx.now();

    // ---------------- Phases 2+3: layering + LP balancing ----------------
    let mut part = Partitioning::from_assignment(g, p, assign);
    let targets = integer_targets(part.counts());
    ctx.charge(p as u64);
    let mut moved_total = 0u64;
    let mut stages = 0usize;
    let mut balanced = false;
    let mut lp_pivots = 0u64;

    for _stage in 0..cfg.max_stages {
        let surplus: Vec<i64> = (0..p)
            .map(|q| part.count(q as PartId) as i64 - targets[q])
            .collect();
        ctx.charge(p as u64);
        if surplus.iter().all(|&s| s == 0) {
            balanced = true;
            break;
        }
        let assign_now = part.assignment().to_vec();
        // Parallel layering: each rank layers owned partitions, then the
        // labels are replicated.
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); p];
        for (v, &q) in assign_now.iter().enumerate() {
            members[q as usize].push(v as NodeId);
        }
        ctx.charge(g.num_vertices() as u64 / w as u64);
        let mut labels_mine: Vec<(NodeId, PartId, u32)> = Vec::new();
        for q in 0..p {
            if owns(q as PartId) {
                let (labels, work) = layer_one(g, &assign_now, q as PartId, &members[q]);
                ctx.charge(work);
                labels_mine.extend(labels);
            }
        }
        let all_labels: Vec<Vec<(NodeId, PartId, u32)>> = ctx.allgather(labels_mine, 3);
        let mut tag = vec![NO_PART; g.num_vertices()];
        let mut level = vec![u32::MAX; g.num_vertices()];
        let mut lambda = vec![0u64; p * p];
        for labels in &all_labels {
            for &(v, t, l) in labels {
                tag[v as usize] = t;
                level[v as usize] = l;
                if t != NO_PART {
                    lambda[assign_now[v as usize] as usize * p + t as usize] += 1;
                }
            }
        }
        ctx.charge(g.num_vertices() as u64);

        // Movement variables under the cap policy (replicated).
        let (pairs, caps): (Vec<(PartId, PartId)>, Option<Vec<u64>>) = match cfg.cap_policy {
            CapPolicy::Strict => {
                let mut pr = Vec::new();
                let mut cp = Vec::new();
                for i in 0..p {
                    for j in 0..p {
                        if lambda[i * p + j] > 0 {
                            pr.push((i as PartId, j as PartId));
                            cp.push(lambda[i * p + j]);
                        }
                    }
                }
                (pr, Some(cp))
            }
            CapPolicy::Relaxed => (adjacency_pairs(g, &assign_now, p), None),
        };
        if pairs.is_empty() {
            break;
        }
        let mut applied = false;
        for delta in 1..=cfg.max_delta {
            let s = scale_surplus(&surplus, delta);
            ctx.charge(p as u64);
            if s.iter().all(|&v| v == 0) {
                break;
            }
            let mut model = LpModel::minimize(pairs.len());
            for k in 0..pairs.len() {
                model.set_objective(k, 1.0);
                if let Some(c) = &caps {
                    model.set_upper_bound(k, c[k] as f64);
                }
            }
            for q in 0..p {
                let mut row: Vec<(usize, f64)> = Vec::new();
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    if i as usize == q {
                        row.push((k, 1.0));
                    } else if j as usize == q {
                        row.push((k, -1.0));
                    }
                }
                model.add_eq(row, s[q] as f64);
            }
            ctx.charge(pairs.len() as u64);
            match parallel_simplex(ctx, &model, cfg.simplex) {
                Ok(sol) => {
                    lp_pivots += sol.stats.total_iters() as u64;
                    // Apply moves on the replicated partitioning: drain
                    // buckets boundary-first, gain-ordered within a level
                    // (identical to sequential).
                    let mut buckets: Vec<Vec<(u32, i64, NodeId)>> = vec![Vec::new(); p * p];
                    for (v, (&t, &l)) in tag.iter().zip(&level).enumerate() {
                        if t != NO_PART {
                            let gain = igp_graph::metrics::move_gain(g, &part, v as NodeId, t);
                            buckets[assign_now[v] as usize * p + t as usize].push((
                                l,
                                -gain,
                                v as NodeId,
                            ));
                        }
                    }
                    for b in &mut buckets {
                        b.sort_unstable();
                    }
                    ctx.charge(g.num_vertices() as u64);
                    let mut moved_flag = vec![false; g.num_vertices()];
                    let mut moved = 0u64;
                    for (k, &(i, j)) in pairs.iter().enumerate() {
                        let want = sol.x[k].round().max(0.0) as usize;
                        let bucket = &buckets[i as usize * p + j as usize];
                        let mut taken = 0usize;
                        for &(_, _, v) in bucket {
                            if taken == want {
                                break;
                            }
                            if !moved_flag[v as usize] {
                                moved_flag[v as usize] = true;
                                part.move_vertex(g, v, j);
                                taken += 1;
                                moved += 1;
                            }
                        }
                        if taken < want {
                            let mut rest: Vec<(u32, NodeId)> = (0..g.num_vertices())
                                .filter(|&v| assign_now[v] == i && !moved_flag[v])
                                .map(|v| (level[v].min(u32::MAX - 1), v as NodeId))
                                .collect();
                            rest.sort_unstable();
                            for (_, v) in rest {
                                if taken == want {
                                    break;
                                }
                                moved_flag[v as usize] = true;
                                part.move_vertex(g, v, j);
                                taken += 1;
                                moved += 1;
                            }
                        }
                    }
                    ctx.charge(moved);
                    moved_total += moved;
                    stages += 1;
                    applied = moved > 0;
                    break;
                }
                Err(LpError::Infeasible) => continue,
                Err(e) => panic!("parallel balance LP failed: {e}"),
            }
        }
        if !applied {
            break;
        }
    }
    if !balanced {
        balanced = (0..p).all(|q| part.count(q as PartId) as i64 == targets[q]);
    }
    let t_balance = ctx.now();

    // ---------------- Phase 4: parallel refinement ----------------
    if with_refinement {
        let mut cut_before = parallel_cut(ctx, g, &part, owns);
        for it in 0..cfg.refine.max_iters {
            let strict = it >= cfg.refine.strict_after;
            // Candidates for owned partitions only; then replicate.
            let mut cands_mine: Vec<(PartId, PartId, NodeId, i64)> = Vec::new();
            for v in g.vertices() {
                let i = part.part_of(v);
                if !owns(i) {
                    continue;
                }
                let mut internal = 0i64;
                let mut best: Option<(i64, PartId)> = None;
                let mut ext: Vec<(PartId, i64)> = Vec::new();
                for (u, wt) in g.edges_of(v) {
                    ctx.charge(1);
                    let q = part.part_of(u);
                    if q == i {
                        internal += wt as i64;
                    } else {
                        match ext.iter_mut().find(|(eq, _)| *eq == q) {
                            Some((_, c)) => *c += wt as i64,
                            None => ext.push((q, wt as i64)),
                        }
                    }
                }
                for &(q, out) in &ext {
                    let gain = out - internal;
                    match best {
                        None => best = Some((gain, q)),
                        Some((bg, bq)) => {
                            if gain > bg || (gain == bg && q < bq) {
                                best = Some((gain, q));
                            }
                        }
                    }
                }
                if let Some((gain, j)) = best {
                    if if strict { gain > 0 } else { gain >= 0 } {
                        cands_mine.push((i, j, v, gain));
                    }
                }
            }
            let all: Vec<Vec<(PartId, PartId, NodeId, i64)>> = ctx.allgather(cands_mine, 4);
            let mut merged: Vec<(PartId, PartId, NodeId, i64)> =
                all.into_iter().flatten().collect();
            if merged.is_empty() {
                break;
            }
            // Group into pairs; order candidates best-gain-first.
            merged.sort_by(|a, b| {
                (a.0, a.1)
                    .cmp(&(b.0, b.1))
                    .then(b.3.cmp(&a.3))
                    .then(a.2.cmp(&b.2))
            });
            ctx.charge(merged.len() as u64);
            let mut pairs: Vec<(PartId, PartId)> = Vec::new();
            let mut lists: Vec<Vec<(NodeId, i64)>> = Vec::new();
            for &(i, j, v, gain) in &merged {
                if pairs.last() != Some(&(i, j)) {
                    pairs.push((i, j));
                    lists.push(Vec::new());
                }
                lists.last_mut().unwrap().push((v, gain));
            }
            let mut caps: Vec<u64> = lists.iter().map(|l| l.len() as u64).collect();
            // Damped application, mirroring the sequential driver: on a
            // measured cut increase roll back, halve caps and re-solve.
            let mut success = false;
            let mut gained = 0u64;
            'attempts: for _attempt in 0..5 {
                let mut model = LpModel::maximize(pairs.len());
                for (k, &c) in caps.iter().enumerate() {
                    model.set_objective(k, 1.0);
                    model.set_upper_bound(k, c as f64);
                }
                for q in 0..p {
                    let mut row: Vec<(usize, f64)> = Vec::new();
                    for (k, &(i, j)) in pairs.iter().enumerate() {
                        if i as usize == q {
                            row.push((k, 1.0));
                        } else if j as usize == q {
                            row.push((k, -1.0));
                        }
                    }
                    if !row.is_empty() {
                        model.add_eq(row, 0.0);
                    }
                }
                let sol = parallel_simplex(ctx, &model, cfg.simplex)
                    .expect("circulation LP always feasible");
                lp_pivots += sol.stats.total_iters() as u64;
                let planned: f64 = sol.x.iter().sum();
                if planned.round() as i64 == 0 {
                    break 'attempts;
                }
                let mut undo: Vec<(NodeId, PartId)> = Vec::new();
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    let want = sol.x[k].round().max(0.0) as usize;
                    for &(v, _) in lists[k].iter().take(want) {
                        undo.push((v, i));
                        part.move_vertex(g, v, j);
                    }
                }
                ctx.charge(undo.len() as u64);
                let cut_after = parallel_cut(ctx, g, &part, owns);
                if cut_after > cut_before {
                    for &(v, back) in undo.iter().rev() {
                        part.move_vertex(g, v, back);
                    }
                    for (c, &x) in caps.iter_mut().zip(&sol.x) {
                        *c = (x.round().max(0.0) as u64) / 2;
                    }
                    if caps.iter().all(|&c| c == 0) {
                        break 'attempts;
                    }
                    continue 'attempts;
                }
                gained = cut_before - cut_after;
                moved_total += undo.len() as u64;
                cut_before = cut_after;
                success = true;
                break 'attempts;
            }
            if !success || gained < cfg.refine.min_gain {
                break;
            }
        }
    }
    let t_refine = ctx.now();

    RankOut {
        assign: part.assignment().to_vec(),
        t_assign,
        t_balance,
        t_refine,
        moved: moved_total,
        stages,
        balanced,
        lp_pivots,
    }
}

/// Distributed cut count: each rank sums boundary cost over its owned
/// partitions; `Σ_q C(q) = 2·cut`.
fn parallel_cut<E: Executor>(
    ctx: &mut E,
    g: &CsrGraph,
    part: &Partitioning,
    owns: impl Fn(PartId) -> bool,
) -> u64 {
    let mut local = 0u64;
    for v in g.vertices() {
        let i = part.part_of(v);
        if !owns(i) {
            continue;
        }
        for (u, wt) in g.edges_of(v) {
            ctx.charge(1);
            if part.part_of(u) != i {
                local += wt;
            }
        }
    }
    ctx.allreduce_sum(local) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::IncrementalPartitioner;
    use igp_graph::metrics::CutMetrics;
    use igp_graph::{generators, GraphDelta};

    fn scenario(k: usize) -> (Partitioning, IncrementalGraph) {
        let g = generators::grid(8, 8);
        let assign: Vec<PartId> = (0..64).map(|v| ((v % 8) / 2) as PartId).collect();
        let old = Partitioning::from_assignment(&g, 4, assign);
        let delta = generators::localized_growth_delta(&g, 7, k, 123);
        let inc = delta.apply(&g);
        (old, inc)
    }

    #[test]
    fn parallel_matches_sequential_objectives() {
        let (old, inc) = scenario(20);
        let seq = IncrementalPartitioner::igp(IgpConfig::new(4));
        let (seq_part, seq_rep) = seq.repartition(&inc, &old);
        for workers in [1, 2, 4] {
            let par = ParallelPartitioner::igp(IgpConfig::new(4), workers);
            let (par_part, rep) = par.repartition(&inc, &old);
            assert!(rep.balanced, "w={workers}");
            assert_eq!(par_part.counts(), seq_part.counts(), "w={workers}");
            // Same optimal movement objective.
            assert_eq!(rep.total_moved, seq_rep.balance.total_moved, "w={workers}");
        }
    }

    #[test]
    fn parallel_igpr_quality() {
        let (old, inc) = scenario(24);
        let seq = IncrementalPartitioner::igpr(IgpConfig::new(4));
        let (_, seq_rep) = seq.repartition(&inc, &old);
        let par = ParallelPartitioner::igpr(IgpConfig::new(4), 3);
        let (par_part, _) = par.repartition(&inc, &old);
        let cut = CutMetrics::compute(inc.new_graph(), &par_part).total_cut_edges;
        // Same pipeline ⇒ near-identical quality (tie-breaks may differ by
        // at most a couple of edges through alternative LP optima).
        assert!(
            (cut as i64 - seq_rep.metrics.total_cut_edges as i64).abs() <= 3,
            "parallel cut {cut} vs sequential {}",
            seq_rep.metrics.total_cut_edges
        );
    }

    #[test]
    fn simulated_time_improves_with_ranks() {
        let (old, inc) = scenario(30);
        let t1 = ParallelPartitioner::igp(IgpConfig::new(4), 1)
            .repartition(&inc, &old)
            .1
            .sim
            .makespan;
        let t4 = ParallelPartitioner::igp(IgpConfig::new(4), 4)
            .repartition(&inc, &old)
            .1
            .sim
            .makespan;
        assert!(t4 < t1, "t1={t1} t4={t4}");
    }

    #[test]
    fn phase_times_monotone() {
        let (old, inc) = scenario(12);
        let (_, rep) = ParallelPartitioner::igpr(IgpConfig::new(4), 2).repartition(&inc, &old);
        assert!(rep.phases.assign > 0.0);
        assert!(rep.phases.balance >= rep.phases.assign);
        assert!(rep.phases.refine >= rep.phases.balance);
    }

    #[test]
    fn orphan_clusters_in_parallel() {
        let g = generators::path(6);
        let old = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
        let delta = GraphDelta {
            add_vertices: vec![1, 1],
            add_edges: vec![(6, 7, 1)], // disconnected pair
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let (part, rep) = ParallelPartitioner::igp(IgpConfig::new(2), 2).repartition(&inc, &old);
        assert!(rep.balanced);
        assert_eq!(part.counts().iter().sum::<u32>(), 8);
    }
}
