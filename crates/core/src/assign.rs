//! Phase 1 — assign an initial partition to the new vertices.
//!
//! Paper §2.1: every surviving vertex keeps its partition (`M'(v) = M(v)`),
//! and every new vertex takes the partition of the *nearest old vertex*
//! in `G'` (eq. 7). New vertices in components containing no old vertex
//! are clustered and each cluster goes to the least-loaded partition
//! (the paper's fallback strategy).

use igp_graph::traversal::{clusters_of, nearest_owner_bfs};
use igp_graph::{IncrementalGraph, NodeId, PartId, Partitioning, NO_PART};

/// Statistics from the assignment phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AssignReport {
    /// Number of newly added vertices assigned.
    pub new_vertices: usize,
    /// Vertices assigned through the disconnected-cluster fallback.
    pub clustered: usize,
    /// Largest BFS distance from a new vertex to its seeding old vertex.
    pub max_dist: u32,
    /// Work units (edges scanned) — feeds the cost model.
    pub work: u64,
}

/// Compute the initial mapping `M'` on the new graph.
///
/// Returns the full (total) assignment vector plus the report. The old
/// partitioning must cover `inc.old()`.
pub fn assign_new_vertices(
    inc: &IncrementalGraph,
    old_part: &Partitioning,
) -> (Vec<PartId>, AssignReport) {
    let g = inc.new_graph();
    let p = old_part.num_parts();
    let mut assign = igp_graph::partition::transfer_assignment(inc, old_part);
    let seeds: Vec<(NodeId, u32)> = assign
        .iter()
        .enumerate()
        .filter(|&(_, &q)| q != NO_PART)
        .map(|(v, &q)| (v as NodeId, q))
        .collect();
    let mut report = AssignReport {
        new_vertices: g.num_vertices() - seeds.len(),
        ..Default::default()
    };
    // Multi-source BFS from all old vertices: the first partition to reach
    // a new vertex claims it (= nearest old vertex, eq. 7).
    if !seeds.is_empty() {
        let (owner, dist) = nearest_owner_bfs(g, &seeds);
        report.work = 2 * g.num_edges() as u64;
        for v in g.vertices() {
            let vi = v as usize;
            if assign[vi] == NO_PART && owner[vi] != u32::MAX {
                assign[vi] = owner[vi];
                report.max_dist = report.max_dist.max(dist[vi]);
            }
        }
    }
    // Fallback: clusters of new vertices unreachable from any old vertex
    // go, whole, to the currently least-loaded partition.
    if assign.contains(&NO_PART) {
        let mut counts: Vec<u64> = vec![0; p];
        for &q in &assign {
            if q != NO_PART {
                counts[q as usize] += 1;
            }
        }
        let orphan: Vec<bool> = assign.iter().map(|&q| q == NO_PART).collect();
        for cluster in clusters_of(g, &orphan) {
            let target = counts
                .iter()
                .enumerate()
                .min_by_key(|&(q, &c)| (c, q))
                .map(|(q, _)| q)
                .unwrap();
            counts[target] += cluster.len() as u64;
            report.clustered += cluster.len();
            for v in cluster {
                assign[v as usize] = target as PartId;
            }
        }
    }
    debug_assert!(assign.iter().all(|&q| (q as usize) < p));
    (assign, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::{generators, CsrGraph, GraphDelta};

    fn two_part_path() -> (CsrGraph, Partitioning) {
        let g = generators::path(6);
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
        (g, p)
    }

    #[test]
    fn survivors_keep_partitions() {
        let (g, p) = two_part_path();
        let delta = GraphDelta {
            add_vertices: vec![1],
            add_edges: vec![(5, 6, 1)],
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let (assign, rep) = assign_new_vertices(&inc, &p);
        assert_eq!(&assign[..6], &[0, 0, 0, 1, 1, 1]);
        assert_eq!(rep.new_vertices, 1);
        assert_eq!(rep.clustered, 0);
    }

    #[test]
    fn new_vertex_takes_nearest_partition() {
        let (g, p) = two_part_path();
        // One new vertex attached at each end.
        let delta = GraphDelta {
            add_vertices: vec![1, 1],
            add_edges: vec![(0, 6, 1), (5, 7, 1)],
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let (assign, rep) = assign_new_vertices(&inc, &p);
        assert_eq!(assign[6], 0);
        assert_eq!(assign[7], 1);
        assert_eq!(rep.max_dist, 1);
    }

    #[test]
    fn chain_of_new_vertices_propagates() {
        let (g, p) = two_part_path();
        // Chain 6-7-8 hanging off vertex 5 (partition 1).
        let delta = GraphDelta {
            add_vertices: vec![1, 1, 1],
            add_edges: vec![(5, 6, 1), (6, 7, 1), (7, 8, 1)],
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let (assign, rep) = assign_new_vertices(&inc, &p);
        assert_eq!(&assign[6..9], &[1, 1, 1]);
        assert_eq!(rep.max_dist, 3);
    }

    #[test]
    fn equidistant_tie_breaks_to_smaller_partition() {
        let (g, p) = two_part_path();
        // New vertex adjacent to both 2 (part 0) and 3 (part 1).
        let delta = GraphDelta {
            add_vertices: vec![1],
            add_edges: vec![(2, 6, 1), (3, 6, 1)],
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let (assign, _) = assign_new_vertices(&inc, &p);
        assert_eq!(assign[6], 0);
    }

    #[test]
    fn disconnected_cluster_goes_to_least_loaded() {
        let g = generators::path(5);
        // Partition 1 is smaller (2 vs 3).
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1]);
        // Two new vertices forming their own component.
        let delta = GraphDelta {
            add_vertices: vec![1, 1],
            add_edges: vec![(5, 6, 1)],
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let (assign, rep) = assign_new_vertices(&inc, &p);
        assert_eq!(assign[5], 1);
        assert_eq!(assign[6], 1);
        assert_eq!(rep.clustered, 2);
    }

    #[test]
    fn multiple_orphan_clusters_spread() {
        let g = generators::path(4);
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 1, 1]);
        // Two separate orphan clusters of different sizes.
        let delta = GraphDelta {
            add_vertices: vec![1, 1, 1],
            add_edges: vec![(4, 5, 1)], // cluster {4,5}; cluster {6}
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let (assign, rep) = assign_new_vertices(&inc, &p);
        assert_eq!(rep.clustered, 3);
        // First cluster {4,5} → part 0 (tie, lower id); then {6} → part 1.
        assert_eq!(assign[4], 0);
        assert_eq!(assign[5], 0);
        assert_eq!(assign[6], 1);
    }

    #[test]
    fn vertex_deletion_handled() {
        let (g, p) = two_part_path();
        let delta = GraphDelta {
            remove_vertices: vec![0],
            add_vertices: vec![1],
            add_edges: vec![(3, 6, 1)],
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let (assign, _) = assign_new_vertices(&inc, &p);
        // New graph: old 1..5 → new 0..4, new vertex = id 5, attached to
        // old 3 (new 2, part 1).
        assert_eq!(assign.len(), 6);
        assert_eq!(assign[5], 1);
    }
}
