//! Long-running repartitioning sessions.
//!
//! The paper's use case is a solver loop: compute for a few iterations,
//! refine the mesh, repartition, repeat — "the remapping must have a
//! lower cost relative to the computational cost of executing the few
//! iterations for which the computational structure remains fixed."
//! [`IgpSession`] packages that loop: it owns the current graph and
//! partitioning, applies successive increments, tracks cumulative
//! statistics, and raises the paper's *from-scratch signal* when capped
//! balancing becomes infeasible.

use crate::config::IgpConfig;
use crate::parallel::ParallelPartitioner;
use crate::partitioner::IncrementalPartitioner;
use igp_graph::metrics::CutMetrics;
use igp_graph::{CsrGraph, GraphDelta, IncrementalGraph, Partitioning};
use igp_runtime::CostModel;

/// Summary of one session step.
#[derive(Clone, Debug)]
pub struct StepSummary {
    /// Step index (0-based).
    pub step: usize,
    /// Vertices after the step.
    pub num_vertices: usize,
    /// Cut edges after the step.
    pub cut: u64,
    /// Max/avg count imbalance after the step.
    pub imbalance: f64,
    /// Vertices moved by balancing + refinement.
    pub moved: u64,
    /// Balancing stages used.
    pub stages: usize,
    /// False if capped balancing gave up (the paper's "it would be better
    /// to start partitioning from scratch" condition).
    pub balanced: bool,
}

/// The repartitioning engine behind a session: the sequential driver or
/// the SPMD driver on whichever [`igp_runtime::Backend`] the config
/// selects.
enum Driver {
    Sequential(IncrementalPartitioner),
    Parallel(ParallelPartitioner),
}

impl Driver {
    /// Repartition, reduced to the summary triple the session tracks:
    /// `(moved, stages, balanced)`.
    fn repartition(
        &self,
        inc: &IncrementalGraph,
        old: &Partitioning,
    ) -> (Partitioning, u64, usize, bool) {
        match self {
            Driver::Sequential(p) => {
                let (part, report) = p.repartition(inc, old);
                (
                    part,
                    report.total_moved(),
                    report.num_stages(),
                    report.balance.balanced,
                )
            }
            Driver::Parallel(p) => {
                let (part, report) = p.repartition(inc, old);
                (part, report.total_moved, report.stages, report.balanced)
            }
        }
    }
}

/// A stateful incremental-repartitioning session.
///
/// ```
/// use igp_core::{session::IgpSession, IgpConfig};
/// use igp_graph::{generators, Partitioning};
///
/// let g = generators::grid(10, 10);
/// let part = Partitioning::from_assignment(
///     &g, 2, (0..100).map(|v| if v % 10 < 5 { 0 } else { 1 }).collect());
/// let mut session = IgpSession::new(g.clone(), part, IgpConfig::new(2), true);
///
/// for step in 0..3 {
///     let delta = generators::localized_growth_delta(session.graph(), 0, 6, step);
///     let summary = session.apply_delta(&delta);
///     assert!(summary.balanced);
/// }
/// assert_eq!(session.graph().num_vertices(), 118);
/// assert_eq!(session.history().len(), 3);
/// ```
pub struct IgpSession {
    graph: CsrGraph,
    part: Partitioning,
    driver: Driver,
    history: Vec<StepSummary>,
    needs_scratch: bool,
}

impl IgpSession {
    /// Start a session from an initial graph and partitioning (typically
    /// produced by RSB). `refined` selects IGPR vs IGP.
    pub fn new(graph: CsrGraph, part: Partitioning, cfg: IgpConfig, refined: bool) -> Self {
        assert_eq!(graph.num_vertices(), part.num_vertices());
        assert_eq!(part.num_parts(), cfg.num_parts);
        let partitioner = if refined {
            IncrementalPartitioner::igpr(cfg)
        } else {
            IncrementalPartitioner::igp(cfg)
        };
        IgpSession {
            graph,
            part,
            driver: Driver::Sequential(partitioner),
            history: Vec::new(),
            needs_scratch: false,
        }
    }

    /// Start a session whose repartitioning runs the SPMD driver on
    /// `workers` ranks over the substrate selected by `cfg.backend`
    /// ([`igp_runtime::Backend::SimCm5`] or
    /// [`igp_runtime::Backend::SharedMem`]).
    pub fn new_parallel(
        graph: CsrGraph,
        part: Partitioning,
        cfg: IgpConfig,
        refined: bool,
        workers: usize,
    ) -> Self {
        assert_eq!(graph.num_vertices(), part.num_vertices());
        assert_eq!(part.num_parts(), cfg.num_parts);
        let partitioner = ParallelPartitioner::new(cfg, workers, refined, CostModel::cm5());
        IgpSession {
            graph,
            part,
            driver: Driver::Parallel(partitioner),
            history: Vec::new(),
            needs_scratch: false,
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The current partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.part
    }

    /// Per-step summaries so far.
    pub fn history(&self) -> &[StepSummary] {
        &self.history
    }

    /// True once a step failed to balance under the configured caps — the
    /// paper's signal to repartition from scratch. Clear it by installing
    /// a fresh partitioning via [`IgpSession::reset_partitioning`].
    pub fn needs_scratch(&self) -> bool {
        self.needs_scratch
    }

    /// Apply an edit list to the current graph and repartition.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> StepSummary {
        let inc = delta.apply(&self.graph);
        self.apply_increment(inc)
    }

    /// Apply a pre-built incremental graph (its `old` side must match the
    /// session's current graph) and repartition.
    pub fn apply_increment(&mut self, inc: IncrementalGraph) -> StepSummary {
        assert_eq!(
            inc.old().num_vertices(),
            self.graph.num_vertices(),
            "increment does not start from the session's current graph"
        );
        let (new_part, moved, stages, balanced) = self.driver.repartition(&inc, &self.part);
        let summary = self.summarize(&inc, &new_part, moved, stages, balanced);
        self.graph = inc.new_graph().clone();
        self.part = new_part;
        self.needs_scratch |= !summary.balanced;
        self.history.push(summary.clone());
        summary
    }

    /// Replace the partitioning (e.g. after an out-of-band from-scratch
    /// RSB run); clears the from-scratch flag.
    pub fn reset_partitioning(&mut self, part: Partitioning) {
        assert_eq!(part.num_vertices(), self.graph.num_vertices());
        self.part = part;
        self.needs_scratch = false;
    }

    fn summarize(
        &self,
        inc: &IncrementalGraph,
        part: &Partitioning,
        moved: u64,
        stages: usize,
        balanced: bool,
    ) -> StepSummary {
        let m = CutMetrics::compute(inc.new_graph(), part);
        StepSummary {
            step: self.history.len(),
            num_vertices: inc.new_graph().num_vertices(),
            cut: m.total_cut_edges,
            imbalance: m.count_imbalance,
            moved,
            stages,
            balanced,
        }
    }

    /// Total vertices moved across the whole session (the cost the paper
    /// trades against solver time).
    pub fn total_moved(&self) -> u64 {
        self.history.iter().map(|s| s.moved).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;
    use igp_graph::PartId;

    fn start() -> IgpSession {
        let g = generators::grid(8, 8);
        let assign: Vec<PartId> = (0..64).map(|v| ((v % 8) / 2) as PartId).collect();
        let part = Partitioning::from_assignment(&g, 4, assign);
        IgpSession::new(g, part, IgpConfig::new(4), true)
    }

    #[test]
    fn multi_step_session() {
        let mut s = start();
        for step in 0..4 {
            let delta = generators::localized_growth_delta(s.graph(), 0, 8, step);
            let sum = s.apply_delta(&delta);
            assert!(sum.balanced, "step {step}");
            assert!(sum.imbalance < 1.05);
        }
        assert_eq!(s.graph().num_vertices(), 64 + 32);
        assert_eq!(s.history().len(), 4);
        assert!(s.total_moved() > 0);
        assert!(!s.needs_scratch());
        s.partitioning().validate(s.graph()).unwrap();
    }

    #[test]
    fn scratch_flag_on_infeasible() {
        // Disconnected islands: growth on one island cannot be balanced.
        let mut edges = Vec::new();
        for i in 0..6u32 {
            edges.push((i, (i + 1) % 6));
            edges.push((6 + i, 6 + (i + 1) % 6));
        }
        let g = igp_graph::CsrGraph::from_edges(12, &edges);
        let part = Partitioning::from_assignment(
            &g,
            2,
            (0..12).map(|v| if v < 6 { 0 } else { 1 }).collect(),
        );
        let mut s = IgpSession::new(g, part, IgpConfig::new(2), false);
        let delta = GraphDelta {
            add_vertices: vec![1; 4],
            add_edges: (0..4).map(|i| (0, 12 + i, 1)).collect(),
            ..Default::default()
        };
        let sum = s.apply_delta(&delta);
        assert!(!sum.balanced);
        assert!(s.needs_scratch());
        // Installing a fresh partitioning clears the flag.
        let fresh = Partitioning::round_robin(s.graph(), 2);
        s.reset_partitioning(fresh);
        assert!(!s.needs_scratch());
    }

    #[test]
    fn parallel_session_on_both_backends() {
        use igp_runtime::Backend;
        for backend in Backend::ALL {
            let g = generators::grid(8, 8);
            let assign: Vec<PartId> = (0..64).map(|v| ((v % 8) / 2) as PartId).collect();
            let part = Partitioning::from_assignment(&g, 4, assign);
            let cfg = IgpConfig::new(4).with_backend(backend);
            let mut s = IgpSession::new_parallel(g, part, cfg, true, 3);
            for step in 0..3 {
                let delta = generators::localized_growth_delta(s.graph(), 0, 8, step);
                let sum = s.apply_delta(&delta);
                assert!(sum.balanced, "{backend} step {step}");
                assert!(sum.imbalance < 1.05, "{backend}");
            }
            assert_eq!(s.graph().num_vertices(), 64 + 24, "{backend}");
            s.partitioning().validate(s.graph()).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "does not start from the session's current graph")]
    fn stale_increment_rejected() {
        let mut s = start();
        let other = generators::grid(5, 5);
        let inc = GraphDelta::default().apply(&other);
        s.apply_increment(inc);
    }
}
