//! Long-running repartitioning sessions.
//!
//! The paper's use case is a solver loop: compute for a few iterations,
//! refine the mesh, repartition, repeat — "the remapping must have a
//! lower cost relative to the computational cost of executing the few
//! iterations for which the computational structure remains fixed."
//! [`IgpSession`] packages that loop: it owns the current graph and
//! partitioning, applies successive increments, tracks cumulative
//! statistics, and raises the paper's *from-scratch signal* when capped
//! balancing becomes infeasible.

use crate::config::IgpConfig;
use crate::parallel::ParallelPartitioner;
use crate::partitioner::IncrementalPartitioner;
use igp_graph::coalesce::{CoalesceError, DeltaCoalescer};
use igp_graph::metrics::CutMetrics;
use igp_graph::{CsrGraph, GraphDelta, IncrementalGraph, NodeId, Partitioning, INVALID_NODE};
use igp_runtime::CostModel;

// The serving layer hands sessions across threads (one registry shard
// can be locked from any connection handler); keep every driver
// configuration `Send` by construction.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<IgpSession>();
    assert_send::<StepSummary>();
    assert_send::<IncrementalPartitioner>();
    assert_send::<ParallelPartitioner>();
};

/// Summary of one session step.
#[derive(Clone, Debug)]
pub struct StepSummary {
    /// Step index (0-based).
    pub step: usize,
    /// Vertices after the step.
    pub num_vertices: usize,
    /// Cut edges after the step.
    pub cut: u64,
    /// Max/avg count imbalance after the step.
    pub imbalance: f64,
    /// Vertices moved by balancing + refinement.
    pub moved: u64,
    /// Balancing stages used.
    pub stages: usize,
    /// False if capped balancing gave up (the paper's "it would be better
    /// to start partitioning from scratch" condition).
    pub balanced: bool,
}

/// The repartitioning engine behind a session: the sequential driver or
/// the SPMD driver on whichever [`igp_runtime::Backend`] the config
/// selects.
enum Driver {
    Sequential(IncrementalPartitioner),
    Parallel(ParallelPartitioner),
}

impl Driver {
    /// Repartition, reduced to the summary tuple the session tracks:
    /// `(moved, stages, balanced, pivots)`.
    fn repartition(
        &self,
        inc: &IncrementalGraph,
        old: &Partitioning,
    ) -> (Partitioning, u64, usize, bool, u64) {
        match self {
            Driver::Sequential(p) => {
                let (part, report) = p.repartition(inc, old);
                let pivots = report
                    .balance
                    .stages
                    .iter()
                    .map(|s| s.lp.pivots as u64)
                    .chain(
                        report
                            .refine
                            .iter()
                            .flat_map(|r| r.iters.iter().map(|i| i.lp.pivots as u64)),
                    )
                    .sum();
                (
                    part,
                    report.total_moved(),
                    report.num_stages(),
                    report.balance.balanced,
                    pivots,
                )
            }
            Driver::Parallel(p) => {
                let (part, report) = p.repartition(inc, old);
                (
                    part,
                    report.total_moved,
                    report.stages,
                    report.balanced,
                    report.total_pivots,
                )
            }
        }
    }

    fn obs_kind(&self) -> DriverKind {
        match self {
            Driver::Sequential(_) => DriverKind::Sequential,
            Driver::Parallel(_) => DriverKind::Parallel,
        }
    }
}

/// Which metric series a step's timings land in.
#[derive(Clone, Copy)]
enum DriverKind {
    Sequential,
    Parallel,
}

/// A stateful incremental-repartitioning session.
///
/// ```
/// use igp_core::{session::IgpSession, IgpConfig};
/// use igp_graph::{generators, Partitioning};
///
/// let g = generators::grid(10, 10);
/// let part = Partitioning::from_assignment(
///     &g, 2, (0..100).map(|v| if v % 10 < 5 { 0 } else { 1 }).collect());
/// let mut session = IgpSession::new(g.clone(), part, IgpConfig::new(2), true);
///
/// for step in 0..3 {
///     let delta = generators::localized_growth_delta(session.graph(), 0, 6, step);
///     let summary = session.apply_delta(&delta);
///     assert!(summary.balanced);
/// }
/// assert_eq!(session.graph().num_vertices(), 118);
/// assert_eq!(session.history().len(), 3);
/// ```
pub struct IgpSession {
    graph: CsrGraph,
    part: Partitioning,
    driver: Driver,
    history: Vec<StepSummary>,
    needs_scratch: bool,
    /// Deltas queued via [`IgpSession::queue_delta`], folded but not yet
    /// applied; `None` when nothing is pending.
    pending: Option<DeltaCoalescer>,
    /// Birth-graph id of each current vertex ([`INVALID_NODE`] for
    /// vertices added after the session started): the per-step
    /// [`IncrementalGraph`] identity maps composed over the whole
    /// session. Durability snapshots persist it, and the recovery
    /// property suite asserts it bit-identical across crash + replay.
    base_of_current: Vec<NodeId>,
    /// Steps taken before this process held the session (non-zero only
    /// after [`IgpSession::rehydrate`]); [`IgpSession::steps`] and step
    /// indices in summaries continue across restarts.
    prior_steps: usize,
    /// Vertices moved by steps that predate this process.
    prior_moved: u64,
}

/// Persisted session state consumed by [`IgpSession::rehydrate`]: what
/// a durability snapshot stores beyond the graph + partitioning pair.
#[derive(Clone, Debug)]
pub struct SessionSeed {
    /// The graph at snapshot time.
    pub graph: CsrGraph,
    /// The partitioning at snapshot time.
    pub part: Partitioning,
    /// Birth-graph id per current vertex (see
    /// [`IgpSession::base_of_current`]).
    pub base_of_current: Vec<NodeId>,
    /// Steps the session had taken when the snapshot was written.
    pub steps: usize,
    /// Total vertices moved by those steps.
    pub total_moved: u64,
    /// The from-scratch flag at snapshot time.
    pub needs_scratch: bool,
}

impl IgpSession {
    /// Start a session from an initial graph and partitioning (typically
    /// produced by RSB). `refined` selects IGPR vs IGP.
    pub fn new(graph: CsrGraph, part: Partitioning, cfg: IgpConfig, refined: bool) -> Self {
        assert_eq!(graph.num_vertices(), part.num_vertices());
        assert_eq!(part.num_parts(), cfg.num_parts);
        let partitioner = if refined {
            IncrementalPartitioner::igpr(cfg)
        } else {
            IncrementalPartitioner::igp(cfg)
        };
        let base = (0..graph.num_vertices() as NodeId).collect();
        IgpSession {
            graph,
            part,
            driver: Driver::Sequential(partitioner),
            history: Vec::new(),
            needs_scratch: false,
            pending: None,
            base_of_current: base,
            prior_steps: 0,
            prior_moved: 0,
        }
    }

    /// Start a session whose repartitioning runs the SPMD driver on
    /// `workers` ranks over the substrate selected by `cfg.backend`
    /// ([`igp_runtime::Backend::SimCm5`] or
    /// [`igp_runtime::Backend::SharedMem`]).
    pub fn new_parallel(
        graph: CsrGraph,
        part: Partitioning,
        cfg: IgpConfig,
        refined: bool,
        workers: usize,
    ) -> Self {
        assert_eq!(graph.num_vertices(), part.num_vertices());
        assert_eq!(part.num_parts(), cfg.num_parts);
        let partitioner = ParallelPartitioner::new(cfg, workers, refined, CostModel::cm5());
        let base = (0..graph.num_vertices() as NodeId).collect();
        IgpSession {
            graph,
            part,
            driver: Driver::Parallel(partitioner),
            history: Vec::new(),
            needs_scratch: false,
            pending: None,
            base_of_current: base,
            prior_steps: 0,
            prior_moved: 0,
        }
    }

    /// Resume a session from persisted state (crash recovery): the
    /// graph, partitioning, composed identity map and counters come
    /// from a durability snapshot instead of a fresh start. `workers ==
    /// 0` selects the sequential driver, otherwise the SPMD driver on
    /// `cfg.backend` — the same rule the serving layer applies at open.
    ///
    /// The rehydrated session is observationally identical to the
    /// never-crashed one: step indices, [`IgpSession::steps`],
    /// [`IgpSession::total_moved`] and the from-scratch flag all
    /// continue where the snapshot left off, and subsequent
    /// repartitions are bit-identical because every driver is
    /// deterministic in (graph, partitioning, config).
    pub fn rehydrate(seed: SessionSeed, cfg: IgpConfig, refined: bool, workers: usize) -> Self {
        assert_eq!(seed.graph.num_vertices(), seed.part.num_vertices());
        assert_eq!(seed.part.num_parts(), cfg.num_parts);
        assert_eq!(
            seed.base_of_current.len(),
            seed.graph.num_vertices(),
            "base_of_current length mismatch"
        );
        let driver = if workers == 0 {
            Driver::Sequential(if refined {
                IncrementalPartitioner::igpr(cfg)
            } else {
                IncrementalPartitioner::igp(cfg)
            })
        } else {
            Driver::Parallel(ParallelPartitioner::new(
                cfg,
                workers,
                refined,
                CostModel::cm5(),
            ))
        };
        IgpSession {
            graph: seed.graph,
            part: seed.part,
            driver,
            history: Vec::new(),
            needs_scratch: seed.needs_scratch,
            pending: None,
            base_of_current: seed.base_of_current,
            prior_steps: seed.steps,
            prior_moved: seed.total_moved,
        }
    }

    /// Snapshot the persistable session state (the inverse of
    /// [`IgpSession::rehydrate`]). Queued deltas are *not* part of the
    /// seed — the durability layer journals them separately and replays
    /// them through [`IgpSession::queue_delta`] after rehydration.
    pub fn seed(&self) -> SessionSeed {
        SessionSeed {
            graph: self.graph.clone(),
            part: self.part.clone(),
            base_of_current: self.base_of_current.clone(),
            steps: self.steps(),
            total_moved: self.total_moved(),
            needs_scratch: self.needs_scratch,
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The current partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.part
    }

    /// Per-step summaries taken by *this process* (a rehydrated session
    /// does not reconstruct pre-crash summaries; [`IgpSession::steps`]
    /// counts across restarts).
    pub fn history(&self) -> &[StepSummary] {
        &self.history
    }

    /// Steps taken over the session's whole lifetime, including steps
    /// that predate a [`IgpSession::rehydrate`].
    pub fn steps(&self) -> usize {
        self.prior_steps + self.history.len()
    }

    /// Birth-graph id of each current vertex ([`INVALID_NODE`] for
    /// vertices added after the session started): the composition of
    /// every step's [`IncrementalGraph`] identity map.
    pub fn base_of_current(&self) -> &[NodeId] {
        &self.base_of_current
    }

    /// True once a step failed to balance under the configured caps — the
    /// paper's signal to repartition from scratch. Clear it by installing
    /// a fresh partitioning via [`IgpSession::reset_partitioning`].
    pub fn needs_scratch(&self) -> bool {
        self.needs_scratch
    }

    /// Apply an edit list to the current graph and repartition.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> StepSummary {
        let inc = delta.apply(&self.graph);
        self.apply_increment(inc)
    }

    /// Queue a delta without repartitioning yet.
    ///
    /// The delta addresses the *virtual* current graph — the session
    /// graph with every already-queued delta applied (so a stream of
    /// deltas can be queued exactly as it would be applied one by one).
    /// Queued deltas are folded incrementally by a
    /// [`DeltaCoalescer`]; [`IgpSession::flush`] pays a single apply +
    /// repartition for the whole batch. On error nothing is queued.
    /// Returns the number of deltas now pending.
    ///
    /// Fully validated at the boundary: structural errors *and*
    /// base-edge existence mismatches (removing an absent edge, adding
    /// a present one) come back as typed [`CoalesceError`]s — a queued
    /// delta can no longer panic later inside the flush.
    pub fn queue_delta(&mut self, delta: &GraphDelta) -> Result<usize, CoalesceError> {
        let co = self
            .pending
            .get_or_insert_with(|| DeltaCoalescer::new(self.graph.num_vertices()));
        match co.push_verified(delta, &self.graph) {
            Ok(()) => Ok(co.len()),
            Err(e) => {
                // Don't let a failed first push pin an empty coalescer
                // to today's graph size: direct applies may change the
                // graph before the next queue attempt, and a stale
                // `n_base` would then panic instead of erroring.
                if co.is_empty() {
                    self.pending = None;
                }
                Err(e)
            }
        }
    }

    /// Number of deltas queued and not yet flushed.
    pub fn pending_deltas(&self) -> usize {
        self.pending.as_ref().map_or(0, |c| c.len())
    }

    /// The pending coalescer, if any deltas are queued (repartition
    /// policies read its [`DeltaCoalescer::dirt`]).
    pub fn pending(&self) -> Option<&DeltaCoalescer> {
        self.pending.as_ref()
    }

    /// Apply every queued delta as **one** coalesced increment and
    /// repartition once.
    ///
    /// Returns `None` when nothing is pending or the queue cancelled out
    /// to a no-op (e.g. adds exactly undone by removes); in both cases
    /// the queue is cleared and no step is recorded.
    pub fn flush(&mut self) -> Option<StepSummary> {
        let co = self.pending.take()?;
        let net = co.net();
        if net.is_empty() {
            return None;
        }
        let m = crate::obs::metrics();
        m.coalesced_batch_deltas.observe(co.len() as u64);
        m.coalesced_delta_ops.observe(
            (net.add_vertices.len()
                + net.remove_vertices.len()
                + net.add_edges.len()
                + net.remove_edges.len()) as u64,
        );
        Some(self.apply_delta(&net))
    }

    /// Queue `deltas` (each addressing the graph produced by its
    /// predecessors) and flush them as one step. On error the already
    /// queued prefix stays pending and nothing is applied.
    pub fn apply_deltas(
        &mut self,
        deltas: &[GraphDelta],
    ) -> Result<Option<StepSummary>, CoalesceError> {
        for d in deltas {
            self.queue_delta(d)?;
        }
        Ok(self.flush())
    }

    /// Apply a pre-built incremental graph (its `old` side must match the
    /// session's current graph) and repartition.
    ///
    /// Panics if deltas are queued (they address a virtual graph ahead
    /// of `inc.old()`): flush or drop the queue first.
    pub fn apply_increment(&mut self, inc: IncrementalGraph) -> StepSummary {
        assert_eq!(
            self.pending_deltas(),
            0,
            "apply_increment with queued deltas pending; flush() first"
        );
        assert_eq!(
            inc.old().num_vertices(),
            self.graph.num_vertices(),
            "increment does not start from the session's current graph"
        );
        let m = crate::obs::metrics();
        // Cut-before costs an extra O(n+m) pass over the old graph;
        // only pay it when recording is on. Timing and counting never
        // touch the repartition inputs, so results stay bit-identical.
        if igp_obs::enabled() {
            let before = CutMetrics::compute(inc.old(), &self.part);
            m.edge_cut_before.set(before.total_cut_edges as i64);
        }
        let (rep_us, reps) = match self.driver.obs_kind() {
            DriverKind::Sequential => (&m.repartition_us_seq, &m.repartitions_total_seq),
            DriverKind::Parallel => (&m.repartition_us_par, &m.repartitions_total_par),
        };
        let (new_part, moved, stages, balanced, pivots) =
            rep_us.time(|| self.driver.repartition(&inc, &self.part));
        reps.inc();
        m.pivots_total.add(pivots);
        m.moved_vertices_total.add(moved);
        if !balanced {
            m.scratch_signals_total.inc();
        }
        let summary = self.summarize(&inc, &new_part, moved, stages, balanced);
        m.edge_cut_after.set(summary.cut as i64);
        // Compose the step's identity map into the birth-relative map.
        let n_new = inc.new_graph().num_vertices();
        let mut base = vec![INVALID_NODE; n_new];
        for (v, slot) in base.iter_mut().enumerate() {
            let old = inc.old_of_new(v as NodeId);
            if old != INVALID_NODE {
                *slot = self.base_of_current[old as usize];
            }
        }
        self.base_of_current = base;
        self.graph = inc.new_graph().clone();
        self.part = new_part;
        self.needs_scratch |= !summary.balanced;
        self.history.push(summary.clone());
        summary
    }

    /// Replace the partitioning (e.g. after an out-of-band from-scratch
    /// RSB run); clears the from-scratch flag.
    pub fn reset_partitioning(&mut self, part: Partitioning) {
        assert_eq!(part.num_vertices(), self.graph.num_vertices());
        self.part = part;
        self.needs_scratch = false;
    }

    fn summarize(
        &self,
        inc: &IncrementalGraph,
        part: &Partitioning,
        moved: u64,
        stages: usize,
        balanced: bool,
    ) -> StepSummary {
        let m = CutMetrics::compute(inc.new_graph(), part);
        StepSummary {
            step: self.prior_steps + self.history.len(),
            num_vertices: inc.new_graph().num_vertices(),
            cut: m.total_cut_edges,
            imbalance: m.count_imbalance,
            moved,
            stages,
            balanced,
        }
    }

    /// Total vertices moved across the whole session lifetime (the cost
    /// the paper trades against solver time), including pre-rehydrate
    /// steps.
    pub fn total_moved(&self) -> u64 {
        self.prior_moved + self.history.iter().map(|s| s.moved).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;
    use igp_graph::PartId;

    fn start() -> IgpSession {
        let g = generators::grid(8, 8);
        let assign: Vec<PartId> = (0..64).map(|v| ((v % 8) / 2) as PartId).collect();
        let part = Partitioning::from_assignment(&g, 4, assign);
        IgpSession::new(g, part, IgpConfig::new(4), true)
    }

    #[test]
    fn multi_step_session() {
        let mut s = start();
        for step in 0..4 {
            let delta = generators::localized_growth_delta(s.graph(), 0, 8, step);
            let sum = s.apply_delta(&delta);
            assert!(sum.balanced, "step {step}");
            assert!(sum.imbalance < 1.05);
        }
        assert_eq!(s.graph().num_vertices(), 64 + 32);
        assert_eq!(s.history().len(), 4);
        assert!(s.total_moved() > 0);
        assert!(!s.needs_scratch());
        s.partitioning().validate(s.graph()).unwrap();
    }

    #[test]
    fn scratch_flag_on_infeasible() {
        // Disconnected islands: growth on one island cannot be balanced.
        let mut edges = Vec::new();
        for i in 0..6u32 {
            edges.push((i, (i + 1) % 6));
            edges.push((6 + i, 6 + (i + 1) % 6));
        }
        let g = igp_graph::CsrGraph::from_edges(12, &edges);
        let part = Partitioning::from_assignment(
            &g,
            2,
            (0..12).map(|v| if v < 6 { 0 } else { 1 }).collect(),
        );
        let mut s = IgpSession::new(g, part, IgpConfig::new(2), false);
        let delta = GraphDelta {
            add_vertices: vec![1; 4],
            add_edges: (0..4).map(|i| (0, 12 + i, 1)).collect(),
            ..Default::default()
        };
        let sum = s.apply_delta(&delta);
        assert!(!sum.balanced);
        assert!(s.needs_scratch());
        // Installing a fresh partitioning clears the flag.
        let fresh = Partitioning::round_robin(s.graph(), 2);
        s.reset_partitioning(fresh);
        assert!(!s.needs_scratch());
    }

    #[test]
    fn parallel_session_on_both_backends() {
        use igp_runtime::Backend;
        for backend in Backend::ALL {
            let g = generators::grid(8, 8);
            let assign: Vec<PartId> = (0..64).map(|v| ((v % 8) / 2) as PartId).collect();
            let part = Partitioning::from_assignment(&g, 4, assign);
            let cfg = IgpConfig::new(4).with_backend(backend);
            let mut s = IgpSession::new_parallel(g, part, cfg, true, 3);
            for step in 0..3 {
                let delta = generators::localized_growth_delta(s.graph(), 0, 8, step);
                let sum = s.apply_delta(&delta);
                assert!(sum.balanced, "{backend} step {step}");
                assert!(sum.imbalance < 1.05, "{backend}");
            }
            assert_eq!(s.graph().num_vertices(), 64 + 24, "{backend}");
            s.partitioning().validate(s.graph()).unwrap();
        }
    }

    #[test]
    fn batched_flush_matches_sequential_graph_evolution() {
        let mut s = start();
        // Ground-truth graph evolution: apply the stream delta by delta.
        let mut expect = s.graph().clone();
        let mut deltas = Vec::new();
        for step in 0..4 {
            let d = generators::localized_growth_delta(&expect, 0, 6, step);
            expect = d.apply(&expect).new_graph().clone();
            deltas.push(d);
        }
        // Queue the same stream; nothing applies until flush.
        for d in &deltas {
            s.queue_delta(d).unwrap();
        }
        assert_eq!(s.pending_deltas(), 4);
        assert_eq!(s.graph().num_vertices(), 64);
        assert!(s.history().is_empty());
        let sum = s.flush().expect("non-empty batch must step");
        assert_eq!(s.pending_deltas(), 0);
        assert_eq!(s.graph(), &expect);
        assert_eq!(s.history().len(), 1);
        assert_eq!(sum.num_vertices, 64 + 24);
        s.partitioning().validate(s.graph()).unwrap();
        // Flushing an empty queue is a no-op.
        assert!(s.flush().is_none());
    }

    #[test]
    fn cancelling_batch_flushes_to_nothing() {
        let mut s = start();
        s.queue_delta(&GraphDelta {
            add_vertices: vec![1],
            add_edges: vec![(0, 64, 1)],
            ..Default::default()
        })
        .unwrap();
        s.queue_delta(&GraphDelta {
            remove_vertices: vec![64],
            ..Default::default()
        })
        .unwrap();
        assert_eq!(s.pending_deltas(), 2);
        assert!(s.flush().is_none(), "cancelled batch must not step");
        assert!(s.history().is_empty());
        assert_eq!(s.graph().num_vertices(), 64);
    }

    #[test]
    fn apply_deltas_convenience_and_error_keeps_prefix() {
        let mut s = start();
        let d1 = generators::localized_growth_delta(s.graph(), 0, 4, 1);
        let bad = GraphDelta {
            remove_vertices: vec![9999],
            ..Default::default()
        };
        let err = s.apply_deltas(&[d1.clone(), bad]).unwrap_err();
        assert!(matches!(
            err,
            igp_graph::CoalesceError::Invalid { index: 1, .. }
        ));
        // The valid prefix is still queued; a later flush applies it.
        assert_eq!(s.pending_deltas(), 1);
        assert!(s.flush().is_some());
        assert_eq!(s.graph().num_vertices(), 68);
        // And the happy path steps once for the whole batch.
        let d2 = generators::localized_growth_delta(s.graph(), 0, 4, 2);
        let sum = s.apply_deltas(std::slice::from_ref(&d2)).unwrap().unwrap();
        assert!(sum.balanced);
        assert_eq!(s.history().len(), 2);
    }

    /// Regression: a rejected queue_delta must not pin an empty
    /// coalescer to the pre-rejection graph size — after a direct
    /// apply_delta grows the graph, queueing must work again (it used
    /// to panic on the stale `n_base`).
    #[test]
    fn rejected_queue_does_not_pin_stale_coalescer() {
        let mut s = start();
        let bad = GraphDelta {
            remove_vertices: vec![9999],
            ..Default::default()
        };
        assert!(s.queue_delta(&bad).is_err());
        assert_eq!(s.pending_deltas(), 0);
        // Direct apply changes the graph size (64 → 68)…
        let d = generators::localized_growth_delta(s.graph(), 0, 4, 0);
        s.apply_delta(&d);
        // …and queueing against the new size still works.
        let d2 = generators::localized_growth_delta(s.graph(), 0, 4, 1);
        assert_eq!(s.queue_delta(&d2).unwrap(), 1);
        assert!(s.flush().is_some());
        assert_eq!(s.graph().num_vertices(), 72);
    }

    #[test]
    #[should_panic(expected = "queued deltas pending")]
    fn apply_increment_rejected_while_queue_pending() {
        let mut s = start();
        let d = generators::localized_growth_delta(s.graph(), 0, 4, 0);
        s.queue_delta(&d).unwrap();
        let inc = GraphDelta::default().apply(s.graph());
        s.apply_increment(inc);
    }

    #[test]
    #[should_panic(expected = "does not start from the session's current graph")]
    fn stale_increment_rejected() {
        let mut s = start();
        let other = generators::grid(5, 5);
        let inc = GraphDelta::default().apply(&other);
        s.apply_increment(inc);
    }

    /// The composed identity map tracks survivors across steps: growth
    /// keeps old ids, removals drop them, additions map to
    /// `INVALID_NODE`.
    #[test]
    fn base_of_current_composes_across_steps() {
        let mut s = start();
        // Identity at birth.
        assert_eq!(s.base_of_current()[..4], [0, 1, 2, 3]);
        let d = generators::localized_growth_delta(s.graph(), 0, 4, 0);
        s.apply_delta(&d);
        // Pure growth: survivors keep ids, additions are INVALID.
        for v in 0..64u32 {
            assert_eq!(s.base_of_current()[v as usize], v);
        }
        for v in 64..68 {
            assert_eq!(s.base_of_current()[v], igp_graph::INVALID_NODE);
        }
        // Remove a birth vertex: every later id shifts down by one and
        // still maps to its birth id.
        s.apply_delta(&GraphDelta {
            remove_vertices: vec![10],
            ..Default::default()
        });
        assert_eq!(s.base_of_current()[9], 9);
        assert_eq!(s.base_of_current()[10], 11);
        assert_eq!(s.graph().num_vertices(), 67);
    }

    /// Rehydrating from a seed is observationally identical to the
    /// uninterrupted session: same graph, partition, identity map, step
    /// indices and totals, before and after further steps.
    #[test]
    fn rehydrate_matches_uninterrupted_session() {
        let mut full = start();
        let mut deltas = Vec::new();
        let mut g = full.graph().clone();
        for step in 0..4 {
            let d = generators::localized_growth_delta(&g, 0, 6, step);
            g = d.apply(&g).new_graph().clone();
            deltas.push(d);
        }
        for d in &deltas[..2] {
            full.apply_delta(d);
        }
        // "Crash" here: persist the seed, rebuild, replay the tail.
        let seed = full.seed();
        assert_eq!(seed.steps, 2);
        let mut recovered = IgpSession::rehydrate(seed, IgpConfig::new(4), true, 0);
        for d in &deltas[2..] {
            let a = full.apply_delta(d);
            let b = recovered.apply_delta(d);
            assert_eq!(a.step, b.step, "step indices must continue");
            assert_eq!(a.cut, b.cut);
            assert_eq!(a.moved, b.moved);
        }
        assert_eq!(recovered.graph(), full.graph());
        assert_eq!(
            recovered.partitioning().assignment(),
            full.partitioning().assignment()
        );
        assert_eq!(recovered.base_of_current(), full.base_of_current());
        assert_eq!(recovered.steps(), full.steps());
        assert_eq!(recovered.total_moved(), full.total_moved());
        assert_eq!(recovered.needs_scratch(), full.needs_scratch());
        // History only holds post-rehydrate steps, but indices align.
        assert_eq!(recovered.history().len(), 2);
        assert_eq!(recovered.history()[0].step, 2);
    }
}
