//! Multilevel incremental partitioning (the paper's stated future work:
//! "Another option is to use a multilevel approach and apply incremental
//! partitioning recursively. We are currently exploring this approach.").
//!
//! Strategy:
//! 1. run phase 1 (assignment) on the fine graph;
//! 2. coarsen by **intra-partition heavy-edge matching** (matches never
//!    cross partitions, so the coarse graph inherits a well-defined
//!    partition and the fine cut equals the coarse cut);
//! 3. balance on the coarse graph with *weighted* movement LPs (a coarse
//!    vertex carries the weight of its constituents), which shrinks the
//!    LP's layering work and lets one move carry several vertices;
//! 4. project back and finish with the exact fine-level balance +
//!    refinement.
//!
//! The coarse stage does most of the movement cheaply; the fine stage
//! only corrects the residual ±w granularity error.

use crate::balance::{balance, integer_targets, solve_movement};
use crate::config::IgpConfig;
use crate::layer::layer_partitions;
use crate::refine::refine;
use igp_graph::{CsrBuilder, CsrGraph, IncrementalGraph, NodeId, PartId, Partitioning, NO_PART};

/// Multilevel driver parameters.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening when the graph has at most this many vertices.
    pub coarsen_to: usize,
    /// Maximum coarsening levels.
    pub max_levels: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_to: 256,
            max_levels: 6,
        }
    }
}

/// Report from a multilevel run.
#[derive(Clone, Debug, Default)]
pub struct MultilevelReport {
    /// Vertex counts at each level, finest first.
    pub level_sizes: Vec<usize>,
    /// Weighted vertices moved during the coarse stage.
    pub coarse_moved: u64,
    /// Vertices moved during the fine correction stage.
    pub fine_moved: u64,
}

/// One coarsening level: coarse graph plus fine→coarse map.
struct Level {
    graph: CsrGraph,
    coarse_of: Vec<NodeId>,
}

/// Heavy-edge matching restricted to same-partition pairs.
fn coarsen(g: &CsrGraph, assign: &[PartId]) -> Level {
    let n = g.num_vertices();
    let mut mate: Vec<NodeId> = vec![igp_graph::INVALID_NODE; n];
    for v in g.vertices() {
        if mate[v as usize] != igp_graph::INVALID_NODE {
            continue;
        }
        let mut best: Option<(u64, NodeId)> = None;
        for (u, w) in g.edges_of(v) {
            if mate[u as usize] == igp_graph::INVALID_NODE
                && u != v
                && assign[u as usize] == assign[v as usize]
            {
                match best {
                    None => best = Some((w, u)),
                    Some((bw, bu)) => {
                        if w > bw || (w == bw && u < bu) {
                            best = Some((w, u));
                        }
                    }
                }
            }
        }
        match best {
            Some((_, u)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // singleton
        }
    }
    // Number coarse vertices: pair representative = smaller id.
    let mut coarse_of = vec![igp_graph::INVALID_NODE; n];
    let mut next: NodeId = 0;
    for v in g.vertices() {
        let m = mate[v as usize];
        if m >= v {
            coarse_of[v as usize] = next;
            if m != v {
                coarse_of[m as usize] = next;
            }
            next += 1;
        }
    }
    // Aggregate edges and weights.
    let nc = next as usize;
    let mut vwgt = vec![0u64; nc];
    for v in g.vertices() {
        vwgt[coarse_of[v as usize] as usize] += g.vertex_weight(v);
    }
    let mut edges: Vec<(NodeId, NodeId, u64)> = Vec::new();
    for (u, v, w) in g.undirected_edges() {
        let (cu, cv) = (coarse_of[u as usize], coarse_of[v as usize]);
        if cu != cv {
            let key = if cu < cv { (cu, cv) } else { (cv, cu) };
            edges.push((key.0, key.1, w));
        }
    }
    edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
    let mut b = CsrBuilder::new(nc);
    for (cv, w) in vwgt.iter().enumerate() {
        b.set_vertex_weight(cv as NodeId, *w);
    }
    let mut it = edges.into_iter().peekable();
    while let Some((a, bb, mut w)) = it.next() {
        while let Some(&(a2, b2, w2)) = it.peek() {
            if a2 == a && b2 == bb {
                w += w2;
                it.next();
            } else {
                break;
            }
        }
        b.add_edge(a, bb, w);
    }
    Level {
        graph: b.build(),
        coarse_of,
    }
}

/// Weighted coarse balancing: move coarse vertices between partitions so
/// fine-vertex weights approach the targets, using one movement LP per
/// round (caps = bucket weights). Returns the moved fine weight.
fn coarse_balance(g: &CsrGraph, part: &mut Partitioning, targets: &[i64], cfg: &IgpConfig) -> u64 {
    let p = cfg.num_parts;
    let mut total_moved = 0u64;
    for _round in 0..cfg.max_stages {
        let surplus: Vec<i64> = (0..p)
            .map(|q| part.weight(q as PartId) as i64 - targets[q])
            .collect();
        if surplus.iter().all(|&s| s.abs() <= 1) {
            break;
        }
        let assign = part.assignment().to_vec();
        let layering = layer_partitions(g, &assign, p);
        let buckets = layering.buckets(&assign);
        // Weighted caps.
        let mut pairs: Vec<(PartId, PartId)> = Vec::new();
        let mut caps: Vec<u64> = Vec::new();
        for i in 0..p {
            for j in 0..p {
                let wsum: u64 = buckets[i * p + j].iter().map(|&v| g.vertex_weight(v)).sum();
                if wsum > 0 {
                    pairs.push((i as PartId, j as PartId));
                    caps.push(wsum);
                }
            }
        }
        if pairs.is_empty() {
            break;
        }
        // Clamp the demand to what the caps can carry (coarse granularity
        // may make the exact demand infeasible); fall back to δ-style
        // halving on infeasibility.
        let mut applied = false;
        for delta in 1..=cfg.max_delta {
            let s = crate::balance::scale_surplus(&surplus, delta);
            if s.iter().all(|&v| v == 0) {
                break;
            }
            if let Ok((l, _)) = solve_movement(p, &pairs, Some(&caps), &s, cfg) {
                let mut moved_here = 0u64;
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    let mut want = l[k].max(0) as u64;
                    for &v in &buckets[i as usize * p + j as usize] {
                        if want == 0 {
                            break;
                        }
                        let wv = g.vertex_weight(v);
                        // Move while it does not overshoot by more than wv/2.
                        if wv <= want || wv - want < wv / 2 + 1 {
                            part.move_vertex(g, v, j);
                            moved_here += wv;
                            want = want.saturating_sub(wv);
                        }
                    }
                }
                total_moved += moved_here;
                applied = moved_here > 0;
                break;
            }
        }
        if !applied {
            break;
        }
    }
    total_moved
}

/// Multilevel IGP: assignment, coarse weighted balance, fine exact balance
/// plus refinement.
pub fn multilevel_repartition(
    inc: &IncrementalGraph,
    old_part: &Partitioning,
    cfg: &IgpConfig,
    ml: &MultilevelConfig,
) -> (Partitioning, MultilevelReport) {
    let g = inc.new_graph();
    let (assign_vec, _) = crate::assign::assign_new_vertices(inc, old_part);
    let mut report = MultilevelReport::default();
    report.level_sizes.push(g.num_vertices());

    // Build the coarsening hierarchy.
    let mut levels: Vec<Level> = Vec::new();
    let mut cur_graph = g.clone();
    let mut cur_assign = assign_vec.clone();
    for _ in 0..ml.max_levels {
        if cur_graph.num_vertices() <= ml.coarsen_to {
            break;
        }
        let level = coarsen(&cur_graph, &cur_assign);
        if level.graph.num_vertices() as f64 > 0.95 * cur_graph.num_vertices() as f64 {
            break; // matching stalled
        }
        let mut coarse_assign = vec![NO_PART; level.graph.num_vertices()];
        for (v, &cv) in level.coarse_of.iter().enumerate() {
            coarse_assign[cv as usize] = cur_assign[v];
        }
        report.level_sizes.push(level.graph.num_vertices());
        cur_graph = level.graph.clone();
        cur_assign = coarse_assign;
        levels.push(level);
    }

    // Coarse weighted balance at the top of the hierarchy.
    let fine_targets = integer_targets(&{
        let mut counts = vec![0u32; cfg.num_parts];
        for &q in &assign_vec {
            counts[q as usize] += 1;
        }
        counts
    });
    if !levels.is_empty() {
        let mut coarse_part =
            Partitioning::from_assignment(&cur_graph, cfg.num_parts, cur_assign.clone());
        report.coarse_moved = coarse_balance(&cur_graph, &mut coarse_part, &fine_targets, cfg);
        cur_assign = coarse_part.assignment().to_vec();
        // Project down through the hierarchy.
        for level in levels.iter().rev() {
            let mut fine_assign = vec![NO_PART; level.coarse_of.len()];
            for (v, &cv) in level.coarse_of.iter().enumerate() {
                fine_assign[v] = cur_assign[cv as usize];
            }
            cur_assign = fine_assign;
        }
    }

    // Exact fine-level correction + refinement.
    let mut part = Partitioning::from_assignment(g, cfg.num_parts, cur_assign);
    let fine_outcome = balance(g, &mut part, cfg);
    report.fine_moved = fine_outcome.total_moved;
    let _ = refine(g, &mut part, cfg);
    (part, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::metrics::CutMetrics;
    use igp_graph::{generators, GraphDelta};

    #[test]
    fn coarsening_halves_and_preserves_weight() {
        let g = generators::grid(10, 10);
        let assign = vec![0 as PartId; 100];
        let lvl = coarsen(&g, &assign);
        assert!(
            lvl.graph.num_vertices() <= 60,
            "{}",
            lvl.graph.num_vertices()
        );
        assert_eq!(lvl.graph.total_vertex_weight(), 100);
        lvl.graph.validate().unwrap();
    }

    #[test]
    fn coarsening_respects_partitions() {
        let g = generators::grid(6, 6);
        let assign: Vec<PartId> = (0..36).map(|v| if v % 6 < 3 { 0 } else { 1 }).collect();
        let lvl = coarsen(&g, &assign);
        // Every coarse vertex's constituents share a partition.
        let mut coarse_part = vec![NO_PART; lvl.graph.num_vertices()];
        for (v, &cv) in lvl.coarse_of.iter().enumerate() {
            if coarse_part[cv as usize] == NO_PART {
                coarse_part[cv as usize] = assign[v];
            } else {
                assert_eq!(coarse_part[cv as usize], assign[v]);
            }
        }
    }

    #[test]
    fn multilevel_balances_like_flat() {
        let g = generators::grid(12, 12);
        let assign: Vec<PartId> = (0..144).map(|v| ((v % 12) / 3) as PartId).collect();
        let old = Partitioning::from_assignment(&g, 4, assign);
        let delta = generators::localized_growth_delta(&g, 0, 28, 5);
        let inc = delta.apply(&g);
        let cfg = IgpConfig::new(4);
        let ml = MultilevelConfig {
            coarsen_to: 32,
            max_levels: 4,
        };
        let (part, report) = multilevel_repartition(&inc, &old, &cfg, &ml);
        assert!(report.level_sizes.len() > 1, "should actually coarsen");
        let counts = part.counts();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "{counts:?}");
        // Cut sane relative to flat IGPR.
        let flat = crate::IncrementalPartitioner::igpr(IgpConfig::new(4));
        let (_, flat_rep) = flat.repartition(&inc, &old);
        let ml_cut = CutMetrics::compute(inc.new_graph(), &part).total_cut_edges;
        assert!(
            (ml_cut as f64) < 2.0 * flat_rep.metrics.total_cut_edges as f64 + 8.0,
            "multilevel cut {ml_cut} vs flat {}",
            flat_rep.metrics.total_cut_edges
        );
    }

    #[test]
    fn multilevel_noop_below_threshold() {
        let g = generators::grid(4, 4);
        let old = Partitioning::from_assignment(
            &g,
            2,
            (0..16).map(|v| if v % 4 < 2 { 0 } else { 1 }).collect(),
        );
        let inc = GraphDelta::default().apply(&g);
        let (part, report) =
            multilevel_repartition(&inc, &old, &IgpConfig::new(2), &MultilevelConfig::default());
        assert_eq!(report.level_sizes, vec![16]); // never coarsened
        assert_eq!(part.count(0), 8);
    }
}
