//! Run reports: phase timings, work accounting and quality metrics.

use crate::assign::AssignReport;
use crate::balance::BalanceOutcome;
use crate::refine::RefineOutcome;
use igp_graph::metrics::CutMetrics;
use std::time::Duration;

/// Wall-clock time per phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Phase 1 (assignment).
    pub assign: Duration,
    /// Phases 2+3 (layering + LP balancing, possibly multi-stage).
    pub balance: Duration,
    /// Phase 4 (LP refinement), zero if not run.
    pub refine: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.assign + self.balance + self.refine
    }
}

/// Full report of one incremental repartitioning.
#[derive(Clone, Debug)]
pub struct IgpReport {
    /// Phase-1 statistics.
    pub assign: AssignReport,
    /// Phase-2/3 statistics (stages, LP sizes, movement).
    pub balance: BalanceOutcome,
    /// Phase-4 statistics (present for IGPR).
    pub refine: Option<RefineOutcome>,
    /// Wall-clock timings.
    pub timings: PhaseTimings,
    /// Cut metrics of the final partitioning.
    pub metrics: CutMetrics,
}

impl IgpReport {
    /// Number of balancing stages used (paper Figure 14 reports 1–3).
    pub fn num_stages(&self) -> usize {
        self.balance.stages.len()
    }

    /// Total modeled work units across phases.
    pub fn total_work(&self) -> u64 {
        self.assign.work + self.balance.work + self.refine.as_ref().map_or(0, |r| r.work)
    }

    /// Fraction of modeled work spent inside LP solves — the paper's
    /// observation "most of the time spent by our algorithm is in the
    /// solution of the linear programming".
    pub fn lp_work_share(&self) -> f64 {
        let lp: u64 = self
            .balance
            .stages
            .iter()
            .map(|s| s.lp.work)
            .chain(
                self.refine
                    .iter()
                    .flat_map(|r| r.iters.iter().map(|i| i.lp.work)),
            )
            .sum();
        let total = self.total_work();
        if total == 0 {
            0.0
        } else {
            lp as f64 / total as f64
        }
    }

    /// Largest LP solved, as `(vars, constraints)` — the paper's E7 datum.
    pub fn max_lp_size(&self) -> (usize, usize) {
        let mut best = (0usize, 0usize);
        for s in &self.balance.stages {
            if s.lp.vars * s.lp.constraints > best.0 * best.1 {
                best = (s.lp.vars, s.lp.constraints);
            }
        }
        if let Some(r) = &self.refine {
            for i in &r.iters {
                if i.lp.vars * i.lp.constraints > best.0 * best.1 {
                    best = (i.lp.vars, i.lp.constraints);
                }
            }
        }
        best
    }

    /// Total vertices moved across balancing and refinement.
    pub fn total_moved(&self) -> u64 {
        self.balance.total_moved + self.refine.as_ref().map_or(0, |r| r.total_moved)
    }
}

impl std::fmt::Display for IgpReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "IGP report: {} new vertices assigned (max dist {}), {} stage(s), {} moved",
            self.assign.new_vertices,
            self.assign.max_dist,
            self.num_stages(),
            self.total_moved(),
        )?;
        for (k, s) in self.balance.stages.iter().enumerate() {
            writeln!(
                f,
                "  stage {k}: delta={} moved={} lp {}v x {}c ({} pivots)",
                s.delta, s.moved, s.lp.vars, s.lp.constraints, s.lp.pivots
            )?;
        }
        if let Some(r) = &self.refine {
            for (k, i) in r.iters.iter().enumerate() {
                writeln!(
                    f,
                    "  refine {k}: cut {} -> {} (moved {}{})",
                    i.cut_before,
                    i.cut_after,
                    i.moved,
                    if i.rolled_back { ", rolled back" } else { "" }
                )?;
            }
        }
        write!(
            f,
            "  cut total/max/min = {}/{}/{}  balanced={} lp-share={:.0}%",
            self.metrics.total_cut_edges,
            self.metrics.max_boundary,
            self.metrics.min_boundary,
            self.balance.balanced,
            100.0 * self.lp_work_share()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{LpAccounting, StageReport};

    fn dummy_report() -> IgpReport {
        IgpReport {
            assign: AssignReport {
                new_vertices: 5,
                clustered: 0,
                max_dist: 2,
                work: 100,
            },
            balance: BalanceOutcome {
                stages: vec![StageReport {
                    delta: 1,
                    moved: 7,
                    lp: LpAccounting {
                        vars: 10,
                        constraints: 14,
                        pivots: 6,
                        work: 840,
                    },
                    layer_work: 50,
                }],
                balanced: true,
                total_moved: 7,
                work: 940,
            },
            refine: None,
            timings: PhaseTimings::default(),
            metrics: CutMetrics {
                total_cut_edges: 12,
                total_cut_weight: 12,
                max_boundary: 5,
                min_boundary: 2,
                count_imbalance: 1.0,
                max_count: 10,
                min_count: 10,
                per_part: vec![],
            },
        }
    }

    #[test]
    fn aggregates() {
        let r = dummy_report();
        assert_eq!(r.num_stages(), 1);
        assert_eq!(r.total_work(), 100 + 940);
        assert_eq!(r.max_lp_size(), (10, 14));
        assert_eq!(r.total_moved(), 7);
        assert!((r.lp_work_share() - 840.0 / 1040.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_key_facts() {
        let s = format!("{}", dummy_report());
        assert!(s.contains("5 new vertices"));
        assert!(s.contains("delta=1"));
        assert!(s.contains("12/5/2"));
    }
}
