//! Phase 2 — layering each partition (paper Figure 3).
//!
//! For every partition `i`, a multi-source BFS from the partition boundary
//! labels each vertex with the *closest foreign partition* `L₀(v)` (eq. 8)
//! and its distance ("level"). Level-0 vertices pick the foreign partition
//! with the most incident cross-edges; deeper vertices take the majority
//! tag of their already-labelled neighbours one level closer to the
//! boundary — exactly the counting scheme of Figure 3. Ties break to the
//! smaller partition id (the paper breaks them arbitrarily).
//!
//! The products are `λ_ij` (how many vertices of `i` may migrate to `j`)
//! and per-vertex `(tag, level)` so the balancing phase can drain vertices
//! in boundary-first order.

use igp_graph::{CsrGraph, NodeId, PartId, NO_PART};
use rayon::prelude::*;

/// Result of layering all partitions.
#[derive(Clone, Debug)]
pub struct Layering {
    /// Number of partitions.
    pub num_parts: usize,
    /// `tag[v]` = closest foreign partition of `v` (`NO_PART` if none is
    /// reachable inside `v`'s partition subgraph).
    pub tag: Vec<PartId>,
    /// BFS level of `v` from its partition boundary (`u32::MAX` untagged).
    pub level: Vec<u32>,
    /// Dense `P×P` row-major movability counts: `lambda[i·P + j] = λ_ij`.
    pub lambda: Vec<u64>,
    /// Work units (edge scans) for the cost model.
    pub work: u64,
}

impl Layering {
    /// `λ_ij`.
    #[inline]
    pub fn lambda(&self, i: PartId, j: PartId) -> u64 {
        self.lambda[i as usize * self.num_parts + j as usize]
    }

    /// Ordered movement buckets: for each `(i, j)` the vertices of `i`
    /// tagged `j`, sorted by `(level, id)` — the order phase 3 drains.
    pub fn buckets(&self, assign: &[PartId]) -> Vec<Vec<NodeId>> {
        let p = self.num_parts;
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); p * p];
        // Collect (level, v) then sort each bucket.
        let mut tmp: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); p * p];
        for (v, (&t, &l)) in self.tag.iter().zip(&self.level).enumerate() {
            if t != NO_PART {
                tmp[assign[v] as usize * p + t as usize].push((l, v as NodeId));
            }
        }
        for (b, mut list) in buckets.iter_mut().zip(tmp) {
            list.sort_unstable();
            *b = list.into_iter().map(|(_, v)| v).collect();
        }
        buckets
    }
}

/// Layer every partition (in parallel over partitions via rayon).
pub fn layer_partitions(g: &CsrGraph, assign: &[PartId], p: usize) -> Layering {
    debug_assert_eq!(assign.len(), g.num_vertices());
    // Member lists.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); p];
    for (v, &q) in assign.iter().enumerate() {
        members[q as usize].push(v as NodeId);
    }
    let per_part: Vec<PartLayerOutput> = members
        .par_iter()
        .enumerate()
        .map(|(i, mem)| layer_one(g, assign, i as PartId, mem))
        .collect();
    let n = g.num_vertices();
    let mut out = Layering {
        num_parts: p,
        tag: vec![NO_PART; n],
        level: vec![u32::MAX; n],
        lambda: vec![0; p * p],
        work: 0,
    };
    for (i, (labels, work)) in per_part.into_iter().enumerate() {
        out.work += work;
        for (v, t, l) in labels {
            out.tag[v as usize] = t;
            out.level[v as usize] = l;
            if t != NO_PART {
                out.lambda[i * p + t as usize] += 1;
            }
        }
    }
    out
}

/// One partition's layering result: `(vertex, tag, level)` labels plus
/// the work performed.
pub(crate) type PartLayerOutput = (Vec<(NodeId, PartId, u32)>, u64);

/// Layer a single partition. Exposed crate-wide so the SPMD driver can
/// layer its owned partitions with the identical kernel.
pub(crate) fn layer_one(
    g: &CsrGraph,
    assign: &[PartId],
    i: PartId,
    members: &[NodeId],
) -> PartLayerOutput {
    let p_sentinel = u32::MAX;
    let mut work = 0u64;
    // Local state, keyed by position in `members` via a lookup map over
    // vertex ids (index into dense arrays by vertex id; the graph is shared
    // so this wastes no per-partition allocation on big graphs only for
    // tags of foreign vertices — acceptable: one u32 + one u8 per vertex
    // would be n-sized per partition. Instead use a compact local index.)
    let local_of = {
        // Sparse position map: only member vertices get a slot.
        let mut map = vec![u32::MAX; g.num_vertices()];
        for (k, &v) in members.iter().enumerate() {
            map[v as usize] = k as u32;
        }
        map
    };
    let m = members.len();
    let mut tag = vec![p_sentinel; m];
    let mut level = vec![u32::MAX; m];
    let mut counts: Vec<u32> = Vec::new(); // scratch per-vertex tag counter
    let num_parts_hint = 64; // counts sized lazily below

    // Level 0: boundary vertices pick the foreign partition with the most
    // incident edges (weighted by edge multiplicity = count of edges).
    let mut frontier: Vec<NodeId> = Vec::new();
    for (k, &v) in members.iter().enumerate() {
        let mut best: Option<(u32, PartId)> = None; // (count, part)
        counts.clear();
        counts.resize(num_parts_hint, 0);
        let mut touched: Vec<PartId> = Vec::new();
        for &u in g.neighbors(v) {
            work += 1;
            let q = assign[u as usize];
            if q != i {
                let qi = q as usize;
                if qi >= counts.len() {
                    counts.resize(qi + 1, 0);
                }
                if counts[qi] == 0 {
                    touched.push(q);
                }
                counts[qi] += 1;
            }
        }
        for &q in &touched {
            let c = counts[q as usize];
            counts[q as usize] = 0;
            match best {
                None => best = Some((c, q)),
                Some((bc, bq)) => {
                    if c > bc || (c == bc && q < bq) {
                        best = Some((c, q));
                    }
                }
            }
        }
        if let Some((_, q)) = best {
            tag[k] = q;
            level[k] = 0;
            frontier.push(v);
        }
    }

    // Inward sweep: untagged members adjacent to the frontier take the
    // majority tag of their level-L neighbours.
    let mut lvl = 0u32;
    let mut candidates: Vec<NodeId> = Vec::new();
    let mut in_candidates = vec![false; m];
    while !frontier.is_empty() {
        candidates.clear();
        for &v in &frontier {
            for &u in g.neighbors(v) {
                work += 1;
                let lu = local_of[u as usize];
                if lu != u32::MAX && tag[lu as usize] == p_sentinel && !in_candidates[lu as usize] {
                    in_candidates[lu as usize] = true;
                    candidates.push(u);
                }
            }
        }
        frontier.clear();
        for &v in &candidates {
            let k = local_of[v as usize] as usize;
            in_candidates[k] = false;
            let mut best: Option<(u32, PartId)> = None;
            let mut touched: Vec<PartId> = Vec::new();
            for &u in g.neighbors(v) {
                work += 1;
                let lu = local_of[u as usize];
                if lu != u32::MAX && level[lu as usize] == lvl {
                    let q = tag[lu as usize];
                    let qi = q as usize;
                    if qi >= counts.len() {
                        counts.resize(qi + 1, 0);
                    }
                    if counts[qi] == 0 {
                        touched.push(q);
                    }
                    counts[qi] += 1;
                }
            }
            for &q in &touched {
                let c = counts[q as usize];
                counts[q as usize] = 0;
                match best {
                    None => best = Some((c, q)),
                    Some((bc, bq)) => {
                        if c > bc || (c == bc && q < bq) {
                            best = Some((c, q));
                        }
                    }
                }
            }
            let (_, q) = best.expect("candidate must have a levelled neighbour");
            tag[k] = q;
            level[k] = lvl + 1;
            frontier.push(v);
        }
        lvl += 1;
    }

    let labels = members
        .iter()
        .enumerate()
        .map(|(k, &v)| {
            let t = if tag[k] == p_sentinel {
                NO_PART
            } else {
                tag[k]
            };
            (v, t, level[k])
        })
        .collect();
    (labels, work)
}

#[cfg(test)]
// Bucket/assignment indices are written `row * stride + col` even when
// the row is 0, keeping the flat-matrix layout visible.
#[allow(clippy::identity_op, clippy::erasing_op)]
mod tests {
    use super::*;
    use igp_graph::{generators, Partitioning};

    /// 1×8 path split in the middle.
    fn path_setup() -> (CsrGraph, Vec<PartId>) {
        let g = generators::path(8);
        (g, vec![0, 0, 0, 0, 1, 1, 1, 1])
    }

    #[test]
    fn path_levels_count_from_boundary() {
        let (g, assign) = path_setup();
        let lay = layer_partitions(&g, &assign, 2);
        // Partition 0: vertex 3 is boundary (level 0), 2 → 1, 1 → 2, 0 → 3.
        assert_eq!(lay.level[3], 0);
        assert_eq!(lay.level[2], 1);
        assert_eq!(lay.level[1], 2);
        assert_eq!(lay.level[0], 3);
        // All of partition 0 is movable only to partition 1.
        assert!(lay.tag[..4].iter().all(|&t| t == 1));
        assert!(lay.tag[4..].iter().all(|&t| t == 0));
        assert_eq!(lay.lambda(0, 1), 4);
        assert_eq!(lay.lambda(1, 0), 4);
        assert_eq!(lay.lambda(0, 0), 0);
    }

    #[test]
    fn grid_three_parts_majority_tags() {
        // 3×9 grid in three vertical bands of 3 columns each.
        let g = generators::grid(3, 9);
        let assign: Vec<PartId> = (0..27).map(|v| ((v % 9) / 3) as PartId).collect();
        let lay = layer_partitions(&g, &assign, 3);
        // Middle band borders both 0 and 2: columns 3 tag→0, column 5 tag→2.
        for r in 0..3 {
            assert_eq!(lay.tag[r * 9 + 3], 0);
            assert_eq!(lay.tag[r * 9 + 5], 2);
            assert_eq!(lay.level[r * 9 + 3], 0);
            assert_eq!(lay.level[r * 9 + 5], 0);
        }
        // λ row sums cover every vertex (graph fully layered).
        let total: u64 = lay.lambda.iter().sum();
        assert_eq!(total, 27);
        // Partition 0 can only send to 1 (not adjacent to 2).
        assert_eq!(lay.lambda(0, 2), 0);
        assert!(lay.lambda(0, 1) > 0);
    }

    #[test]
    fn level_zero_iff_boundary() {
        let g = generators::grid(6, 6);
        let assign: Vec<PartId> = (0..36).map(|v| if v % 6 < 3 { 0 } else { 1 }).collect();
        let part = Partitioning::from_assignment(&g, 2, assign.clone());
        let lay = layer_partitions(&g, &assign, 2);
        for v in g.vertices() {
            let is_boundary = part.is_boundary(&g, v);
            assert_eq!(
                lay.level[v as usize] == 0,
                is_boundary,
                "vertex {v}: level {} boundary {is_boundary}",
                lay.level[v as usize]
            );
        }
    }

    #[test]
    fn boundary_tag_picks_heaviest_cross_partition() {
        // Vertex 0 in part 0 with one neighbour in part 1 and two in part 2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let assign = vec![0, 1, 2, 2];
        let lay = layer_partitions(&g, &assign, 3);
        assert_eq!(lay.tag[0], 2);
    }

    #[test]
    fn tie_breaks_to_smaller_partition() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let assign = vec![0, 2, 1];
        let lay = layer_partitions(&g, &assign, 3);
        assert_eq!(lay.tag[0], 1);
    }

    #[test]
    fn unreachable_interior_gets_no_part() {
        // Partition 0 = {0,1} ∪ {4,5} where {4,5} is a separate component
        // with no cross edges.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let assign = vec![0, 0, 1, 1, 0, 0];
        let lay = layer_partitions(&g, &assign, 2);
        assert_eq!(lay.tag[4], NO_PART);
        assert_eq!(lay.tag[5], NO_PART);
        assert_eq!(lay.level[4], u32::MAX);
        // λ only counts taggable vertices.
        assert_eq!(lay.lambda(0, 1), 2);
    }

    #[test]
    fn buckets_sorted_by_level() {
        let (g, assign) = path_setup();
        let lay = layer_partitions(&g, &assign, 2);
        let buckets = lay.buckets(&assign);
        // Bucket (0 → 1): vertices 3,2,1,0 in boundary-first order.
        assert_eq!(buckets[0 * 2 + 1], vec![3, 2, 1, 0]);
        assert_eq!(buckets[1 * 2 + 0], vec![4, 5, 6, 7]);
    }

    #[test]
    fn work_accounted() {
        let (g, assign) = path_setup();
        let lay = layer_partitions(&g, &assign, 2);
        assert!(lay.work >= 2 * g.num_edges() as u64);
    }
}
