//! Phase 3 — load balancing via linear programming (paper §2.3).
//!
//! Minimize total vertex movement `Σ l_ij` subject to the movability caps
//! `0 ≤ l_ij ≤ λ_ij` (eq. 11) and per-partition balance
//! `out(j) − in(j) = |B'(j)| − μ̄` (eq. 12, oriented as in the paper's
//! Figure 5 instance). When the capped system is infeasible the right-hand
//! side is scaled by `δ > 1` and the solve-move-relayer cycle repeats —
//! the paper's **multi-stage** scheme ("this would not achieve load
//! balancing in one step, but several such steps can be applied") — or the
//! caps are dropped entirely ([`CapPolicy::Relaxed`]).
//!
//! Selected vertices are drained from the layer buckets in boundary-first
//! order, which is what keeps the deformation of the original partitions
//! small.

use crate::config::{BalanceSolver, CapPolicy, IgpConfig};
use crate::layer::{layer_partitions, Layering};
use igp_graph::{CsrGraph, PartId, Partitioning};
use igp_lp::{flow, LpError, LpModel, Simplex};

/// LP size/work accounting (experiment E7).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LpAccounting {
    /// Structural variables `v` (the paper reports v = 188 for P = 32).
    pub vars: usize,
    /// Constraint rows `c` including caps (paper: c = 126).
    pub constraints: usize,
    /// Simplex pivots (0 for the network solver).
    pub pivots: usize,
    /// Modeled work units: pivots × rows × cols (dense iteration cost).
    pub work: u64,
}

/// One balancing stage.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// The δ used (1 = full correction).
    pub delta: u32,
    /// Vertices moved in this stage.
    pub moved: u64,
    /// LP accounting.
    pub lp: LpAccounting,
    /// Layering work units for this stage.
    pub layer_work: u64,
}

/// Outcome of the balancing phase.
#[derive(Clone, Debug)]
pub struct BalanceOutcome {
    /// Stage-by-stage detail (the paper's "number of stages required").
    pub stages: Vec<StageReport>,
    /// True if the partition reached its integer targets.
    pub balanced: bool,
    /// Total vertices moved.
    pub total_moved: u64,
    /// Total work units (layering + LP + applying moves).
    pub work: u64,
}

/// Integer per-partition targets summing exactly to `n`: `⌊n/P⌋` each,
/// with the remainder going to the currently largest partitions (less
/// movement than arbitrary assignment). Ties break to the smaller id.
pub fn integer_targets(counts: &[u32]) -> Vec<i64> {
    let p = counts.len();
    let n: u64 = counts.iter().map(|&c| c as u64).sum();
    let base = (n / p as u64) as i64;
    let rem = (n % p as u64) as usize;
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by_key(|&j| (std::cmp::Reverse(counts[j]), j));
    let mut t = vec![base; p];
    for &j in order.iter().take(rem) {
        t[j] += 1;
    }
    t
}

/// Scale the surplus vector by `δ` (truncating toward zero) while keeping
/// the total at zero — the paper's eq. 13 RHS.
pub fn scale_surplus(surplus: &[i64], delta: u32) -> Vec<i64> {
    let d = delta as i64;
    let mut s: Vec<i64> = surplus.iter().map(|&x| x / d).collect();
    let mut sum: i64 = s.iter().sum();
    // Nudge entries with the largest dropped remainder first, in the
    // direction of their own remainder, until the total is zero again.
    let mut order: Vec<usize> = (0..s.len()).collect();
    order.sort_by_key(|&j| (std::cmp::Reverse((surplus[j] - d * s[j]).abs()), j));
    let mut k = 0usize;
    let mut guard = 0usize;
    while sum != 0 && guard < 8 * s.len().max(1) {
        let j = order[k % order.len()];
        let rem = surplus[j] - d * s[j];
        if sum > 0 && rem < 0 {
            s[j] -= 1;
            sum -= 1;
        } else if sum < 0 && rem > 0 {
            s[j] += 1;
            sum += 1;
        }
        k += 1;
        guard += 1;
    }
    // Forced fallback (cannot trigger when Σ surplus = 0, kept for safety).
    while sum > 0 {
        let j = (0..s.len()).max_by_key(|&j| s[j]).unwrap();
        s[j] -= 1;
        sum -= 1;
    }
    while sum < 0 {
        let j = (0..s.len()).min_by_key(|&j| s[j]).unwrap();
        s[j] += 1;
        sum += 1;
    }
    s
}

/// Solve one movement LP: variables are the directed pairs in `pairs`
/// (with optional caps), constraints are `out(j) − in(j) = surplus[j]`.
/// Returns the integral movement counts aligned with `pairs`.
pub fn solve_movement(
    num_parts: usize,
    pairs: &[(PartId, PartId)],
    caps: Option<&[u64]>,
    surplus: &[i64],
    cfg: &IgpConfig,
) -> Result<(Vec<i64>, LpAccounting), LpError> {
    debug_assert_eq!(surplus.iter().sum::<i64>(), 0);
    match cfg.solver {
        BalanceSolver::NetworkFlow => {
            let big = surplus.iter().map(|s| s.unsigned_abs()).sum::<u64>().max(1) as i64;
            let arcs: Vec<(usize, usize, i64)> = pairs
                .iter()
                .enumerate()
                .map(|(k, &(i, j))| {
                    let cap = caps.map(|c| c[k] as i64).unwrap_or(big);
                    (i as usize, j as usize, cap)
                })
                .collect();
            match flow::min_movement_transshipment(num_parts, &arcs, surplus) {
                Some((_, l)) => {
                    let acc = LpAccounting {
                        vars: pairs.len(),
                        constraints: num_parts + caps.map_or(0, |c| c.len()),
                        pivots: 0,
                        work: (pairs.len() * num_parts) as u64,
                    };
                    Ok((l, acc))
                }
                None => Err(LpError::Infeasible),
            }
        }
        BalanceSolver::DenseSimplex | BalanceSolver::BoundedSimplex => {
            let mut m = LpModel::minimize(pairs.len());
            for k in 0..pairs.len() {
                m.set_objective(k, 1.0);
                if let Some(c) = caps {
                    m.set_upper_bound(k, c[k] as f64);
                }
            }
            for q in 0..num_parts {
                let mut row: Vec<(usize, f64)> = Vec::new();
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    if i as usize == q {
                        row.push((k, 1.0)); // outgoing
                    } else if j as usize == q {
                        row.push((k, -1.0)); // incoming
                    }
                }
                m.add_eq(row, surplus[q] as f64);
            }
            let sol = match cfg.solver {
                BalanceSolver::DenseSimplex => Simplex::new(cfg.simplex).solve(&m)?,
                _ => igp_lp::solve_bounded_with(&m, cfg.simplex)?,
            };
            let l: Vec<i64> = sol
                .x
                .iter()
                .map(|&v| {
                    let r = v.round();
                    debug_assert!(
                        (v - r).abs() < 1e-5,
                        "balance LP returned non-integral value {v}"
                    );
                    r as i64
                })
                .collect();
            let acc = LpAccounting {
                vars: pairs.len(),
                constraints: m.num_rows_expanded(),
                pivots: sol.stats.total_iters(),
                work: (sol.stats.total_iters() * sol.stats.rows * sol.stats.cols) as u64,
            };
            Ok((l, acc))
        }
    }
}

/// Gain of moving `v` to partition `j` under the *current* assignment:
/// weighted edges into `j` minus edges into `v`'s own partition.
pub(crate) fn drain_gain(
    g: &CsrGraph,
    part: &Partitioning,
    v: igp_graph::NodeId,
    j: PartId,
) -> i64 {
    igp_graph::metrics::move_gain(g, part, v, j)
}

/// Directed partition-adjacency pairs `(i, j)` (an edge of the graph
/// crosses from `i` to `j`).
pub fn adjacency_pairs(g: &CsrGraph, assign: &[PartId], p: usize) -> Vec<(PartId, PartId)> {
    let mut seen = vec![false; p * p];
    for v in g.vertices() {
        let i = assign[v as usize];
        for &u in g.neighbors(v) {
            let j = assign[u as usize];
            if i != j {
                seen[i as usize * p + j as usize] = true;
            }
        }
    }
    let mut pairs = Vec::new();
    for i in 0..p {
        for j in 0..p {
            if seen[i * p + j] {
                pairs.push((i as PartId, j as PartId));
            }
        }
    }
    pairs
}

/// Run the full multi-stage balancing phase, mutating `part` in place.
pub fn balance(g: &CsrGraph, part: &mut Partitioning, cfg: &IgpConfig) -> BalanceOutcome {
    let p = cfg.num_parts;
    debug_assert_eq!(part.num_parts(), p);
    let targets = integer_targets(part.counts());
    let mut out = BalanceOutcome {
        stages: Vec::new(),
        balanced: false,
        total_moved: 0,
        work: 0,
    };

    for _stage in 0..cfg.max_stages {
        let surplus: Vec<i64> = (0..p)
            .map(|q| part.count(q as PartId) as i64 - targets[q])
            .collect();
        if surplus.iter().all(|&s| s == 0) {
            out.balanced = true;
            break;
        }
        let assign = part.assignment().to_vec();
        let layering = layer_partitions(g, &assign, p);
        out.work += layering.work;

        // Variables: movable pairs under the cap policy.
        let (pairs, caps): (Vec<(PartId, PartId)>, Option<Vec<u64>>) = match cfg.cap_policy {
            CapPolicy::Strict => {
                let mut pr = Vec::new();
                let mut cp = Vec::new();
                for i in 0..p {
                    for j in 0..p {
                        let lam = layering.lambda(i as PartId, j as PartId);
                        if lam > 0 {
                            pr.push((i as PartId, j as PartId));
                            cp.push(lam);
                        }
                    }
                }
                (pr, Some(cp))
            }
            CapPolicy::Relaxed => (adjacency_pairs(g, &assign, p), None),
        };
        if pairs.is_empty() {
            break; // nothing can move (no adjacency) — give up
        }

        // Try δ = 1, 2, 3, … until a feasible scaled problem appears.
        let mut applied = false;
        for delta in 1..=cfg.max_delta {
            let s = scale_surplus(&surplus, delta);
            if s.iter().all(|&v| v == 0) {
                break; // δ so coarse nothing would move — infeasible path
            }
            match solve_movement(p, &pairs, caps.as_deref(), &s, cfg) {
                Ok((l, acc)) => {
                    out.work += acc.work;
                    let moved =
                        apply_moves(g, part, &layering, &assign, &pairs, &l, cfg.cap_policy);
                    out.work += moved;
                    out.total_moved += moved;
                    out.stages.push(StageReport {
                        delta,
                        moved,
                        lp: acc,
                        layer_work: layering.work,
                    });
                    applied = moved > 0;
                    break;
                }
                Err(LpError::Infeasible) => continue,
                Err(e) => panic!("balance LP failed unexpectedly: {e}"),
            }
        }
        if !applied {
            break; // no δ feasible or zero movement — report unbalanced
        }
    }
    if !out.balanced {
        // Final check (the loop may have exited on max_stages right after
        // the balancing move).
        let surplus_zero = (0..p).all(|q| part.count(q as PartId) as i64 == targets[q]);
        out.balanced = surplus_zero;
    }
    out
}

/// Apply LP movement counts: drain `l[k]` vertices from bucket `(i → j)`
/// in boundary-first order, breaking level ties by the *gain* of moving
/// the vertex to `j` (`out(v,j) − in(v)`, best first) so migration peels
/// the corner of the partition nearest `j` instead of scattering dents
/// along the whole boundary. Under [`CapPolicy::Relaxed`] overflow beyond
/// the bucket takes further vertices of `i` by (level, id) order.
fn apply_moves(
    g: &CsrGraph,
    part: &mut Partitioning,
    layering: &Layering,
    assign_before: &[PartId],
    pairs: &[(PartId, PartId)],
    l: &[i64],
    policy: CapPolicy,
) -> u64 {
    let buckets = layering.buckets(assign_before);
    let p = layering.num_parts;
    let mut moved_flag = vec![false; g.num_vertices()];
    let mut moved = 0u64;
    for (k, &(i, j)) in pairs.iter().enumerate() {
        let want = l[k].max(0) as usize;
        if want == 0 {
            continue;
        }
        let mut bucket: Vec<igp_graph::NodeId> = buckets[i as usize * p + j as usize].clone();
        bucket.sort_by_key(|&v| {
            (
                layering.level[v as usize],
                -crate::balance::drain_gain(g, part, v, j),
                v,
            )
        });
        let mut taken = 0usize;
        for &v in bucket.iter() {
            if taken == want {
                break;
            }
            if !moved_flag[v as usize] {
                moved_flag[v as usize] = true;
                part.move_vertex(g, v, j);
                taken += 1;
                moved += 1;
            }
        }
        if taken < want {
            debug_assert!(
                policy == CapPolicy::Relaxed,
                "strict caps guarantee bucket capacity (pair {i}->{j}: want {want}, bucket {})",
                bucket.len()
            );
            // Overflow: any remaining vertices of i, shallowest layer first.
            let mut rest: Vec<(u32, igp_graph::NodeId)> = (0..g.num_vertices())
                .filter(|&v| assign_before[v] == i && !moved_flag[v])
                .map(|v| (layering.level[v].min(u32::MAX - 1), v as igp_graph::NodeId))
                .collect();
            rest.sort_unstable();
            for (_, v) in rest {
                if taken == want {
                    break;
                }
                moved_flag[v as usize] = true;
                part.move_vertex(g, v, j);
                taken += 1;
                moved += 1;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;

    fn cfg(p: usize) -> IgpConfig {
        IgpConfig::new(p)
    }

    #[test]
    fn integer_targets_distribute_remainder_to_largest() {
        // 10 vertices, 3 parts with counts [5, 3, 2] → base 3, rem 1 → the
        // largest part keeps the extra: targets [4, 3, 3].
        assert_eq!(integer_targets(&[5, 3, 2]), vec![4, 3, 3]);
        assert_eq!(integer_targets(&[2, 3, 5]), vec![3, 3, 4]);
        assert_eq!(integer_targets(&[4, 4]), vec![4, 4]);
    }

    #[test]
    fn scale_surplus_preserves_zero_sum() {
        let s = scale_surplus(&[7, -3, -4], 2);
        assert_eq!(s.iter().sum::<i64>(), 0);
        assert!(s[0] >= 2 && s[0] <= 4, "{s:?}");
        let s1 = scale_surplus(&[7, -3, -4], 1);
        assert_eq!(s1, vec![7, -3, -4]);
    }

    #[test]
    fn scale_surplus_large_delta_zeroes() {
        let s = scale_surplus(&[3, -3], 100);
        assert_eq!(s, vec![0, 0]);
    }

    #[test]
    fn paper_figure5_through_solver() {
        // The Figure 5 instance via the movement-LP interface.
        let pairs: Vec<(PartId, PartId)> = vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 0),
            (1, 2),
            (2, 0),
            (2, 1),
            (2, 3),
            (3, 0),
            (3, 2),
        ];
        let caps = vec![9u64, 7, 12, 10, 11, 3, 7, 9, 7, 5];
        let surplus = vec![8i64, 1, -1, -8];
        for solver in [
            BalanceSolver::DenseSimplex,
            BalanceSolver::BoundedSimplex,
            BalanceSolver::NetworkFlow,
        ] {
            let mut c = cfg(4);
            c.solver = solver;
            let (l, acc) = solve_movement(4, &pairs, Some(&caps), &surplus, &c).unwrap();
            assert_eq!(l.iter().sum::<i64>(), 9, "{solver:?}");
            assert_eq!(l[2], 8, "l03 via {solver:?}"); // direct 0→3
            assert_eq!(l[4], 1, "l12 via {solver:?}"); // direct 1→2
            assert!(acc.vars == 10);
        }
    }

    #[test]
    fn infeasible_when_caps_too_tight() {
        let pairs: Vec<(PartId, PartId)> = vec![(0, 1)];
        let caps = vec![2u64];
        let surplus = vec![5i64, -5];
        let c = cfg(2);
        assert!(matches!(
            solve_movement(2, &pairs, Some(&caps), &surplus, &c),
            Err(LpError::Infeasible)
        ));
    }

    #[test]
    fn balance_path_two_parts() {
        // Path of 10, lopsided 8/2 split → must end 5/5 with only boundary
        // vertices moved.
        let g = generators::path(10);
        let assign: Vec<PartId> = (0..10).map(|v| if v < 8 { 0 } else { 1 }).collect();
        let mut part = Partitioning::from_assignment(&g, 2, assign);
        let outcome = balance(&g, &mut part, &cfg(2));
        assert!(outcome.balanced);
        assert_eq!(part.count(0), 5);
        assert_eq!(part.count(1), 5);
        assert_eq!(outcome.total_moved, 3);
        // Contiguity preserved: moved vertices are 5, 6, 7.
        for v in 0..10u32 {
            assert_eq!(part.part_of(v), if v < 5 { 0 } else { 1 });
        }
    }

    #[test]
    fn balance_respects_adjacency_multihop() {
        // Three bands on a grid; band 0 overloaded, band 2 underloaded, the
        // flow must pass through band 1.
        let g = generators::grid(4, 12);
        let mut assign: Vec<PartId> = Vec::new();
        for v in 0..48 {
            let col = v % 12;
            assign.push(if col < 6 {
                0
            } else if col < 9 {
                1
            } else {
                2
            });
        }
        let mut part = Partitioning::from_assignment(&g, 3, assign);
        assert_eq!(part.counts(), &[24, 12, 12]);
        let outcome = balance(&g, &mut part, &cfg(3));
        assert!(outcome.balanced, "stages: {:?}", outcome.stages.len());
        assert_eq!(part.counts(), &[16, 16, 16]);
        // Partition 0 only borders 1, so everything must have flowed 0→1→2.
        assert!(outcome.total_moved >= 8 + 4);
    }

    #[test]
    fn already_balanced_is_noop() {
        let g = generators::cycle(12);
        let assign: Vec<PartId> = (0..12).map(|v| (v / 4) as PartId).collect();
        let mut part = Partitioning::from_assignment(&g, 3, assign);
        let outcome = balance(&g, &mut part, &cfg(3));
        assert!(outcome.balanced);
        assert_eq!(outcome.total_moved, 0);
        assert!(outcome.stages.is_empty());
    }

    #[test]
    fn multi_stage_on_tight_boundary() {
        // A "funnel": partition 0 has a big overload but only one boundary
        // vertex per stage can see partition 1 (a path), so λ caps force
        // multiple stages with δ > 1 or repeated small stages.
        let g = generators::path(16);
        let assign: Vec<PartId> = (0..16).map(|v| if v < 14 { 0 } else { 1 }).collect();
        let mut part = Partitioning::from_assignment(&g, 2, assign);
        let mut c = cfg(2);
        c.max_stages = 8;
        let outcome = balance(&g, &mut part, &c);
        // On a path λ_01 = 14 (every vertex layers toward the single
        // boundary), so this is single-stage; the point is the invariant:
        assert!(outcome.balanced);
        assert_eq!(part.count(0), 8);
        assert_eq!(part.count(1), 8);
    }

    #[test]
    fn relaxed_policy_always_one_stage() {
        let g = generators::grid(6, 8);
        let assign: Vec<PartId> = (0..48).map(|v| if v < 40 { 0 } else { 1 }).collect();
        let mut part = Partitioning::from_assignment(&g, 2, assign);
        let mut c = cfg(2);
        c.cap_policy = CapPolicy::Relaxed;
        let outcome = balance(&g, &mut part, &c);
        assert!(outcome.balanced);
        assert_eq!(outcome.stages.len(), 1);
        assert_eq!(part.count(0), 24);
    }

    #[test]
    fn network_and_simplex_agree_on_balance() {
        let g = generators::grid(5, 10);
        let assign: Vec<PartId> = (0..50).map(|v| if v % 10 < 7 { 0 } else { 1 }).collect();
        for solver in [
            BalanceSolver::DenseSimplex,
            BalanceSolver::BoundedSimplex,
            BalanceSolver::NetworkFlow,
        ] {
            let mut part = Partitioning::from_assignment(&g, 2, assign.clone());
            let mut c = cfg(2);
            c.solver = solver;
            let outcome = balance(&g, &mut part, &c);
            assert!(outcome.balanced, "{solver:?}");
            assert_eq!(part.count(0), 25, "{solver:?}");
            assert_eq!(outcome.total_moved, 10, "{solver:?}");
        }
    }

    #[test]
    fn adjacency_pairs_on_bands() {
        let g = generators::grid(3, 9);
        let assign: Vec<PartId> = (0..27).map(|v| ((v % 9) / 3) as PartId).collect();
        let pairs = adjacency_pairs(&g, &assign, 3);
        assert_eq!(pairs, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }
}
