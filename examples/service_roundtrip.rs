//! The serving layer end to end, in one process: boot the daemon on an
//! ephemeral port, drive two tenants over real TCP — one flushing every
//! delta (the paper's loop), one under the cost-model trigger — and
//! show what policy-driven batching changes.
//!
//! ```sh
//! cargo run --release --example service_roundtrip
//! ```

use igp::graph::generators;
use igp::service::client::{DeltaAck, IgpClient};
use igp::service::server::{serve, ServeOptions};
use igp::service::session::SessionConfig;

fn main() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    println!("daemon on {}", server.addr());
    let mut cli = IgpClient::connect(server.addr()).expect("connect");
    cli.ping().expect("ping");

    let base = generators::grid(10, 10);
    for (sid, policy) in [("eager", "every:1"), ("lazy", "cost")] {
        let mut cfg = SessionConfig::new(4);
        cfg.policy = policy.parse().unwrap();
        let ack = cli.open(sid, &base, &cfg).expect("open");
        println!(
            "\n[{sid}] policy={policy}: opened n={} m={} cut={} imbalance={:.3}",
            ack.n, ack.m, ack.cut, ack.imbalance
        );

        // Stream 15 growth deltas, mirroring the evolving graph
        // client-side (queued deltas address the *virtual* graph).
        let mut mirror = base.clone();
        let mut repartitions = 0;
        for k in 0..15u64 {
            let d = generators::localized_growth_delta(&mirror, 0, 4, k);
            mirror = d.apply(&mirror).new_graph().clone();
            match cli.delta(sid, &d).expect("delta") {
                DeltaAck::Queued { pending } => {
                    println!("[{sid}] delta {k}: queued ({pending} pending)")
                }
                DeltaAck::Stepped(s) => {
                    repartitions += 1;
                    println!(
                        "[{sid}] delta {k}: REPARTITION #{} coalesced={} n={} cut={} \
                         imbalance={:.3} moved={}",
                        s.step, s.coalesced, s.n, s.cut, s.imbalance, s.moved
                    );
                }
            }
        }
        if let Some(s) = cli.flush(sid).expect("flush") {
            repartitions += 1;
            println!(
                "[{sid}] final flush: coalesced={} n={} cut={} moved={}",
                s.coalesced, s.n, s.cut, s.moved
            );
        }
        let stat = cli.stat(sid).expect("stat");
        assert_eq!(stat.n, mirror.num_vertices());
        println!(
            "[{sid}] 15 deltas → {repartitions} repartitions; final n={} cut={} \
             imbalance={:.3} total-moved={}",
            stat.n, stat.cut, stat.imbalance, stat.moved
        );
        cli.close(sid).expect("close");
    }

    cli.shutdown().expect("shutdown");
    server.wait();
    println!("\ndaemon shut down cleanly");
}
