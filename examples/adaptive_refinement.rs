//! The paper's motivating application: an adaptive-mesh solver loop.
//!
//! ```text
//! cargo run --release --example adaptive_refinement
//! ```
//!
//! Simulates an adaptive PDE computation: a moving "shock front" sweeps
//! across the domain, and after each solver phase the mesh is refined
//! around the front (a small incremental change). After every refinement
//! the partition is updated with IGPR, and we track cut quality, balance
//! and repartitioning cost over ten generations — demonstrating the
//! paper's point that "this method can be used for repartitioning for
//! several stages" without falling behind from-scratch RSB.

use igp::graph::metrics::CutMetrics;
use igp::graph::IncrementalGraph;
use igp::mesh::domain::Rect;
use igp::mesh::{Disc, MeshBuilder, Point};
use igp::spectral::{recursive_spectral_bisection, RsbOptions};
use igp::{IgpConfig, IncrementalPartitioner};
use std::time::Instant;

fn main() {
    let parts = 16;
    let generations = 10;
    let nodes_per_refinement = 30;

    let domain = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 1.0));
    let mut builder = MeshBuilder::generate(domain, 1200, 7);
    let mut g = builder.graph();
    println!(
        "initial mesh: {} nodes; partitioning with RSB ...",
        g.num_vertices()
    );
    let mut part = recursive_spectral_bisection(&g, parts, RsbOptions::default());
    let igpr = IncrementalPartitioner::igpr(IgpConfig::new(parts));

    println!(
        "\n{:>4} {:>7} {:>9} {:>9} {:>10} {:>8} {:>8}",
        "gen", "|V|", "cut(IGPR)", "cut(RSB)", "ratio", "imbal", "time"
    );
    let mut total_igp_time = 0.0;
    let mut total_rsb_time = 0.0;
    for gen in 0..generations {
        // The front moves left→right; refine a disc around it.
        let x = 0.4 + 3.2 * (gen as f64 / (generations - 1) as f64);
        let region = Disc::new(Point::new(x, 0.5), 0.28);
        builder.refine_region(&region, nodes_per_refinement);
        let g_new = builder.graph();
        let inc = IncrementalGraph::new(
            g.clone(),
            g_new.clone(),
            (0..g_new.num_vertices() as u32)
                .map(|v| {
                    if (v as usize) < g.num_vertices() {
                        v
                    } else {
                        igp::graph::INVALID_NODE
                    }
                })
                .collect(),
        );

        let t = Instant::now();
        let (new_part, report) = igpr.repartition(&inc, &part);
        let igp_time = t.elapsed().as_secs_f64();
        total_igp_time += igp_time;
        assert!(
            report.balance.balanced,
            "generation {gen} failed to balance"
        );

        // From-scratch comparison (the expensive thing we are avoiding).
        let t = Instant::now();
        let scratch = recursive_spectral_bisection(&g_new, parts, RsbOptions::default());
        total_rsb_time += t.elapsed().as_secs_f64();
        let m_inc = CutMetrics::compute(&g_new, &new_part);
        let m_rsb = CutMetrics::compute(&g_new, &scratch);

        println!(
            "{:>4} {:>7} {:>9} {:>9} {:>10.3} {:>8.3} {:>7.1}ms",
            gen,
            g_new.num_vertices(),
            m_inc.total_cut_edges,
            m_rsb.total_cut_edges,
            m_inc.total_cut_edges as f64 / m_rsb.total_cut_edges as f64,
            m_inc.count_imbalance,
            igp_time * 1e3,
        );

        g = g_new;
        part = new_part;
    }
    println!(
        "\ntotal repartitioning time: {:.1} ms (IGPR) vs {:.1} ms (RSB from scratch) → {:.0}x cheaper",
        total_igp_time * 1e3,
        total_rsb_time * 1e3,
        total_rsb_time / total_igp_time.max(1e-12)
    );
}
