//! The paper's Figure 13/14 scenario: severe localized imbalance and
//! multi-stage δ-balancing.
//!
//! ```text
//! cargo run --release --example severe_imbalance
//! ```
//!
//! All new vertices land in one tiny region, overloading a couple of
//! partitions by far more than their boundaries can shed in one step.
//! With strict movability caps (`l_ij ≤ λ_ij`) the balance LP is
//! infeasible at δ = 1, so the partitioner scales the correction by δ and
//! applies several stages — the paper's §2.3 mechanism ("The number of
//! stages required ... were 1, 1, 2, and 3"). The relaxed-caps policy is
//! shown for contrast: one stage, but a more deformed partition.

use igp::graph::metrics::CutMetrics;
use igp::graph::{generators, PartId, Partitioning};
use igp::{CapPolicy, IgpConfig, IncrementalPartitioner};

fn main() {
    // A 48×48 grid, 16 partitions as 4×4 tiles (each tile 12×12 = 144).
    let side = 48usize;
    let g = generators::grid(side, side);
    let assign: Vec<PartId> = (0..side * side)
        .map(|v| {
            let (r, c) = (v / side, v % side);
            ((r / 12) * 4 + c / 12) as PartId
        })
        .collect();
    let old = Partitioning::from_assignment(&g, 16, assign);
    println!(
        "initial: {} vertices, 16 partitions of {}, cut {}",
        g.num_vertices(),
        old.count(0),
        CutMetrics::compute(&g, &old).total_cut_edges
    );

    for &extra in &[40usize, 160, 400] {
        // Growth concentrated at the corner vertex 0 → partition 0 only.
        let delta = generators::localized_growth_delta(&g, 0, extra, 99);
        let inc = delta.apply(&g);
        println!(
            "\n=== +{extra} vertices, all near partition 0 (overload {:.0}%) ===",
            100.0 * extra as f64 / 144.0
        );
        for (name, policy) in [
            ("strict caps (paper default)", CapPolicy::Strict),
            ("relaxed caps", CapPolicy::Relaxed),
        ] {
            let mut cfg = IgpConfig::new(16);
            cfg.cap_policy = policy;
            let igp = IncrementalPartitioner::igpr(cfg);
            let (part, report) = igp.repartition(&inc, &old);
            let deformation: usize = g
                .vertices()
                .filter(|&v| {
                    let nv = inc.new_of_old(v);
                    nv != igp::graph::INVALID_NODE && part.part_of(nv) != old.part_of(v)
                })
                .count();
            let deltas: Vec<u32> = report.balance.stages.iter().map(|s| s.delta).collect();
            println!(
                "  {name}: {} stage(s) δ={deltas:?}, moved {}, old vertices relocated {}, \
                 cut {}, balanced {}",
                report.num_stages(),
                report.balance.total_moved,
                deformation,
                report.metrics.total_cut_edges,
                report.balance.balanced,
            );
        }
    }
    println!("\n→ strict caps need more stages as the overload grows, but keep the");
    println!("  movement near partition boundaries; relaxed caps finish in one stage");
    println!("  at the cost of deforming the original partitions more.");
}
