//! Quickstart: partition a mesh, grow it, repartition incrementally.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline on a small adaptive mesh: initial partitioning
//! with recursive spectral bisection, a localized refinement adding 24
//! nodes, and an incremental repartition with IGP and IGPR — printing the
//! quality/beyond-scratch comparison the paper is about.

use igp::graph::metrics::CutMetrics;
use igp::graph::IncrementalGraph;
use igp::mesh::domain::Rect;
use igp::mesh::{Disc, MeshBuilder, Point};
use igp::spectral::{recursive_spectral_bisection, RsbOptions};
use igp::{IgpConfig, IncrementalPartitioner};
use std::time::Instant;

fn main() {
    let parts = 8;

    // 1. Build an initial mesh of 600 nodes over a rectangle.
    let domain = Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 1.5));
    let mut builder = MeshBuilder::generate(domain, 600, 42);
    let g0 = builder.graph();
    println!(
        "initial mesh: {} nodes, {} edges",
        g0.num_vertices(),
        g0.num_edges()
    );

    // 2. Partition it from scratch with RSB (the expensive baseline).
    let t = Instant::now();
    let old_part = recursive_spectral_bisection(&g0, parts, RsbOptions::default());
    let rsb_time = t.elapsed();
    let m0 = CutMetrics::compute(&g0, &old_part);
    println!(
        "RSB: {:?}, cut total/max/min = {}/{}/{}, imbalance {:.3}",
        rsb_time, m0.total_cut_edges, m0.max_boundary, m0.min_boundary, m0.count_imbalance
    );

    // 3. The application adaptively refines one region: +24 nodes.
    builder.refine_region(&Disc::new(Point::new(2.6, 1.2), 0.25), 24);
    let g1 = builder.graph();
    let inc = IncrementalGraph::new(
        g0.clone(),
        g1.clone(),
        (0..g1.num_vertices() as u32)
            .map(|v| {
                if (v as usize) < g0.num_vertices() {
                    v
                } else {
                    igp::graph::INVALID_NODE
                }
            })
            .collect(),
    );
    println!(
        "\nrefined mesh: {} nodes (+{}), edit summary {}",
        g1.num_vertices(),
        inc.added_vertices().len(),
        inc.diff().summary()
    );

    // 4. Repartition incrementally (IGP, then IGPR) instead of from scratch.
    for (label, refined) in [("IGP", false), ("IGPR", true)] {
        let part = if refined {
            IncrementalPartitioner::igpr(IgpConfig::new(parts))
        } else {
            IncrementalPartitioner::igp(IgpConfig::new(parts))
        };
        let t = Instant::now();
        let (new_part, report) = part.repartition(&inc, &old_part);
        let igp_time = t.elapsed();
        let m = CutMetrics::compute(&g1, &new_part);
        println!(
            "\n{label}: {:?} ({}x faster than RSB-from-scratch)",
            igp_time,
            (rsb_time.as_secs_f64() / igp_time.as_secs_f64().max(1e-9)) as u64
        );
        println!("{report}");
        assert!(report.balance.balanced, "partition must be balanced");
        assert_eq!(m.total_cut_edges, report.metrics.total_cut_edges);
    }

    // 5. Compare against RSB from scratch on the refined mesh.
    let t = Instant::now();
    let scratch = recursive_spectral_bisection(&g1, parts, RsbOptions::default());
    let m_scratch = CutMetrics::compute(&g1, &scratch);
    println!(
        "\nRSB from scratch on refined mesh: {:?}, cut {}",
        t.elapsed(),
        m_scratch.total_cut_edges
    );
    println!("\n→ incremental repartitioning keeps quality close to from-scratch RSB at a fraction of the cost.");
}
