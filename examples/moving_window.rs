//! The fully general incremental model: a moving refinement window that
//! **adds vertices ahead and deletes vertices behind** — `V₁`, `V₂`, `E₁`
//! and `E₂` all non-empty, exactly the paper's §1.1 definition
//! (`V' = V ∪ V₁ − V₂`, `E' = E ∪ E₁ − E₂`).
//!
//! ```text
//! cargo run --release --example moving_window
//! ```
//!
//! A tracked feature (say a shock) moves across the domain. Each step
//! refines the mesh around the new feature position and coarsens the
//! previously refined region back to background resolution, while IGPR
//! keeps the partitioning balanced.

use igp::graph::metrics::CutMetrics;
use igp::mesh::domain::Rect;
use igp::mesh::sequence::mixed_inc;
use igp::mesh::{Disc, MeshBuilder, Point};
use igp::spectral::{recursive_spectral_bisection, RsbOptions};
use igp::{IgpConfig, IncrementalPartitioner};

fn main() {
    let parts = 8;
    let steps = 6;
    let domain = Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 1.0));
    let mut builder = MeshBuilder::generate(domain, 900, 21);
    let mut g = builder.graph();
    let mut part = recursive_spectral_bisection(&g, parts, RsbOptions::default());
    let igpr = IncrementalPartitioner::igpr(IgpConfig::new(parts));

    println!(
        "{:>4} {:>7} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "step", "|V|", "+V1", "-V2", "cut", "imbal", "moved"
    );
    for s in 0..steps {
        let x = 0.4 + 2.2 * (s as f64 / (steps - 1) as f64);
        let front = Disc::new(Point::new(x, 0.5), 0.22);
        let wake = Disc::new(Point::new((x - 0.75).max(0.2), 0.5), 0.28);

        let removed = builder.coarsen_region(&wake, 25);
        let added = builder.refine_region(&front, 40);
        let g_new = builder.graph();
        let inc = mixed_inc(g.clone(), g_new.clone(), &removed, added.len());

        let (new_part, report) = igpr.repartition(&inc, &part);
        assert!(report.balance.balanced, "step {s} failed to balance");
        let m = CutMetrics::compute(&g_new, &new_part);
        println!(
            "{:>4} {:>7} {:>6} {:>6} {:>8} {:>8.3} {:>8}",
            s,
            g_new.num_vertices(),
            added.len(),
            removed.len(),
            m.total_cut_edges,
            m.count_imbalance,
            report.total_moved(),
        );
        g = g_new;
        part = new_part;
    }
    println!("\n→ the partitioner absorbs simultaneous vertex additions and deletions,");
    println!("  keeping perfect balance while the refined window sweeps the domain.");
}
