//! Parallel scaling of the SPMD incremental partitioner.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```
//!
//! Runs the same repartitioning problem on 1..32 virtual CM-5 ranks and
//! prints the simulated time, per-phase breakdown and speedup. The
//! simulated clock follows the cost model of DESIGN.md §4; the paper's
//! claim is "speedup of around 15 to 20 on a 32 node CM-5".

use igp::graph::{generators, PartId, Partitioning};
use igp::parallel::ParallelPartitioner;
use igp::runtime::CostModel;
use igp::IgpConfig;

fn main() {
    let parts = 32;
    // A 64×64 grid with 32 vertical-band partitions and localized growth.
    let side = 64usize;
    let g = generators::grid(side, side);
    let assign: Vec<PartId> = (0..side * side)
        .map(|v| ((v % side) / 2) as PartId)
        .collect();
    let old = Partitioning::from_assignment(&g, parts, assign);
    let delta = generators::localized_growth_delta(&g, (side * side - 1) as u32, 96, 3);
    let inc = delta.apply(&g);
    println!(
        "workload: {} -> {} vertices, {} partitions\n",
        g.num_vertices(),
        inc.new_graph().num_vertices(),
        parts
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workers", "model-time", "speedup", "assign", "balance", "refine", "wall"
    );
    let mut t1 = None;
    for workers in [1usize, 2, 4, 8, 16, 32] {
        let pp = ParallelPartitioner::new(IgpConfig::new(parts), workers, true, CostModel::cm5());
        let (part, rep) = pp.repartition(&inc, &old);
        assert!(rep.balanced);
        assert!(part.count_imbalance() < 1.02);
        let base = *t1.get_or_insert(rep.sim.makespan);
        println!(
            "{:>8} {:>11.4}s {:>9.2}x {:>9.4}s {:>9.4}s {:>9.4}s {:>9.4}s",
            workers,
            rep.sim.makespan,
            base / rep.sim.makespan,
            rep.phases.assign,
            rep.phases.balance - rep.phases.assign,
            rep.phases.refine - rep.phases.balance,
            rep.sim.wall_seconds,
        );
    }
    println!("\n(model-time = simulated CM-5 makespan; wall = real threaded run on this host)");
}
