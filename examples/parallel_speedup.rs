//! Parallel scaling of the SPMD incremental partitioner.
//!
//! ```text
//! cargo run --release --example parallel_speedup [-- --backend sim-cm5|shared-mem]
//! ```
//!
//! Runs the same repartitioning problem on 1..32 ranks and prints the
//! per-worker time, per-phase breakdown and speedup. On the default
//! `sim-cm5` backend the clock is the simulated CM-5 cost model of
//! DESIGN.md §4 (the paper's claim is "speedup of around 15 to 20 on a
//! 32 node CM-5"); on `shared-mem` every column is real wall time on
//! this host (DESIGN.md §6), so the speedup is bounded by the core
//! count.

use igp::graph::{generators, PartId, Partitioning};
use igp::parallel::ParallelPartitioner;
use igp::runtime::{Backend, CostModel};
use igp::IgpConfig;

fn backend_from_args() -> Backend {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else {
        return Backend::SimCm5;
    };
    // Anything but the one supported flag is a mistake — don't silently
    // run the default sweep when the user mistyped it.
    let (value, consumed) = match first.strip_prefix("--backend=") {
        Some(v) => (v.to_string(), 1),
        None if first == "--backend" => match args.get(1) {
            Some(v) => (v.clone(), 2),
            None => {
                eprintln!("error: --backend requires a value (sim-cm5 or shared-mem)");
                std::process::exit(2);
            }
        },
        None => {
            eprintln!("error: unknown argument '{first}' (usage: --backend sim-cm5|shared-mem)");
            std::process::exit(2);
        }
    };
    if args.len() > consumed {
        eprintln!("error: unexpected argument '{}'", args[consumed]);
        std::process::exit(2);
    }
    match value.parse() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let backend = backend_from_args();
    let parts = 32;
    // A 64×64 grid with 32 vertical-band partitions and localized growth.
    let side = 64usize;
    let g = generators::grid(side, side);
    let assign: Vec<PartId> = (0..side * side)
        .map(|v| ((v % side) / 2) as PartId)
        .collect();
    let old = Partitioning::from_assignment(&g, parts, assign);
    let delta = generators::localized_growth_delta(&g, (side * side - 1) as u32, 96, 3);
    let inc = delta.apply(&g);
    println!(
        "workload: {} -> {} vertices, {} partitions, backend {}\n",
        g.num_vertices(),
        inc.new_graph().num_vertices(),
        parts,
        backend
    );
    let time_col = match backend {
        Backend::SimCm5 => "model-time",
        Backend::SharedMem => "rank-time",
    };
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workers", time_col, "speedup", "assign", "balance", "refine", "wall"
    );
    let mut t1 = None;
    for workers in [1usize, 2, 4, 8, 16, 32] {
        let cfg = IgpConfig::new(parts).with_backend(backend);
        let pp = ParallelPartitioner::new(cfg, workers, true, CostModel::cm5());
        let (part, rep) = pp.repartition(&inc, &old);
        assert!(rep.balanced);
        assert!(part.count_imbalance() < 1.02);
        let base = *t1.get_or_insert(rep.sim.makespan);
        println!(
            "{:>8} {:>11.4}s {:>9.2}x {:>9.4}s {:>9.4}s {:>9.4}s {:>9.4}s",
            workers,
            rep.sim.makespan,
            base / rep.sim.makespan,
            rep.phases.assign,
            rep.phases.balance - rep.phases.assign,
            rep.phases.refine - rep.phases.balance,
            rep.sim.wall_seconds,
        );
    }
    match backend {
        Backend::SimCm5 => println!(
            "\n(model-time = simulated CM-5 makespan; wall = real threaded run on this host)"
        ),
        Backend::SharedMem => println!(
            "\n(rank-time = slowest rank's wall clock; speedup is bounded by this host's cores)"
        ),
    }
}
