//! Renders the pipeline stages as SVG — a qualitative reproduction of the
//! paper's Figures 2 (assignment), 4 (layering), 6 (after balancing) and
//! 9 (after refinement).
//!
//! ```text
//! cargo run --release --example partition_viz [out_dir]
//! ```
//!
//! Writes `stage0_initial.svg` … `stage4_refined.svg` plus an ASCII
//! summary to stdout.

use igp::assign::assign_new_vertices;
use igp::balance::balance;
use igp::graph::metrics::CutMetrics;
use igp::graph::{IncrementalGraph, Partitioning};
use igp::layer::layer_partitions;
use igp::mesh::domain::Rect;
use igp::mesh::{Disc, MeshBuilder, Point};
use igp::refine::refine;
use igp::spectral::{recursive_spectral_bisection, RsbOptions};
use igp::IgpConfig;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/viz".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let parts = 4;

    // Small mesh so the SVGs stay readable (the paper uses 4 partitions).
    let domain = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
    let mut builder = MeshBuilder::generate(domain, 260, 11);
    let g0 = builder.graph();
    let part0 = recursive_spectral_bisection(&g0, parts, RsbOptions::default());
    let mesh0 = builder.mesh();
    save(
        &out_dir,
        "stage0_initial.svg",
        &mesh0.to_svg(Some(part0.assignment()), 640.0),
    );

    // Figure 2(b): incremental vertices appear in one corner.
    builder.refine_region(&Disc::new(Point::new(1.7, 1.7), 0.3), 28);
    let g1 = builder.graph();
    let mesh1 = builder.mesh();
    let inc = IncrementalGraph::new(
        g0.clone(),
        g1.clone(),
        (0..g1.num_vertices() as u32)
            .map(|v| {
                if (v as usize) < g0.num_vertices() {
                    v
                } else {
                    igp::graph::INVALID_NODE
                }
            })
            .collect(),
    );
    let cfg = IgpConfig::new(parts);

    // Stage 1 — assignment (paper Figure 2).
    let (assign1, _) = assign_new_vertices(&inc, &part0);
    let mut part = Partitioning::from_assignment(&g1, parts, assign1);
    save(
        &out_dir,
        "stage1_assigned.svg",
        &mesh1.to_svg(Some(part.assignment()), 640.0),
    );
    println!("after assignment: counts {:?}", part.counts());

    // Stage 2 — layering (paper Figure 4): colour = closest foreign
    // partition, rendered via the tag array.
    let lay = layer_partitions(&g1, part.assignment(), parts);
    let tags: Vec<u32> = lay
        .tag
        .iter()
        .map(|&t| if t == igp::graph::NO_PART { 99 } else { t })
        .collect();
    save(
        &out_dir,
        "stage2_layering.svg",
        &mesh1.to_svg(Some(&tags), 640.0),
    );
    let mut lam = String::new();
    for i in 0..parts {
        for j in 0..parts {
            if lay.lambda(i as u32, j as u32) > 0 {
                lam.push_str(&format!("λ{}{}={} ", i, j, lay.lambda(i as u32, j as u32)));
            }
        }
    }
    println!("layering counts: {lam}");

    // Stage 3 — balancing (paper Figure 6).
    let outcome = balance(&g1, &mut part, &cfg);
    save(
        &out_dir,
        "stage3_balanced.svg",
        &mesh1.to_svg(Some(part.assignment()), 640.0),
    );
    println!(
        "after balancing: counts {:?} ({} stage(s), moved {})",
        part.counts(),
        outcome.stages.len(),
        outcome.total_moved
    );

    // Stage 4 — refinement (paper Figure 9).
    let cut_before = CutMetrics::compute(&g1, &part).total_cut_edges;
    let r = refine(&g1, &mut part, &cfg);
    let cut_after = CutMetrics::compute(&g1, &part).total_cut_edges;
    save(
        &out_dir,
        "stage4_refined.svg",
        &mesh1.to_svg(Some(part.assignment()), 640.0),
    );
    println!(
        "after refinement: cut {cut_before} -> {cut_after} (moved {} in {} iteration(s))",
        r.total_moved,
        r.iters.len()
    );
    println!("\nSVGs written to {out_dir}/stage*.svg");
}

fn save(dir: &str, name: &str, svg: &str) {
    let path = format!("{dir}/{name}");
    std::fs::write(&path, svg).unwrap_or_else(|e| panic!("write {path}: {e}"));
}
