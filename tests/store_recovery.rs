//! Crash-recovery property suite: for any random churn scenario,
//! killing the durable session at a random point — between requests or
//! at a random byte offset *inside* the WAL — and recovering from disk
//! yields a session bit-identical to the uninterrupted single-threaded
//! replay: same graph, same partition assignment, same composed
//! identity map, same counters. Failure seeds persist to
//! `tests/regressions/`.

mod common;

use igp::graph::{generators, CsrGraph, GraphDelta};
use igp::service::durable::recover_session;
use igp::service::session::{InitPartition, ServiceSession, SessionConfig};
use igp::service::{RepartitionPolicy, SnapshotPolicy};
use igp::store::store::SessionState;
use igp::store::{SessionStore, StoreError};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// A scratch session directory, unique per test case.
fn scratch_dir(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("igp-recovery-{}-{tag}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(parts: usize, policy_ix: u8, refined: bool) -> SessionConfig {
    let mut cfg = SessionConfig::new(parts);
    cfg.init = InitPartition::RoundRobin;
    cfg.refined = refined;
    cfg.policy = match policy_ix % 3 {
        0 => RepartitionPolicy::EveryK(1),
        1 => RepartitionPolicy::EveryK(3),
        _ => "cost".parse().unwrap(),
    };
    cfg
}

fn snapshot_policy(ix: u8) -> SnapshotPolicy {
    match ix % 3 {
        0 => SnapshotPolicy::Never,
        1 => SnapshotPolicy::EveryK(2),
        _ => SnapshotPolicy::default(),
    }
}

/// The event stream one scenario feeds: deltas, with an explicit flush
/// sprinkled in every few events (flushes are journaled as markers, so
/// they exercise the non-delta record path).
fn delta_stream(base: &CsrGraph, k: usize, seed: u64) -> Vec<GraphDelta> {
    let mut mirror = base.clone();
    let mut deltas = Vec::with_capacity(k);
    for i in 0..k {
        let d = if i % 3 == 2 {
            generators::random_churn_delta(&mirror, 2, 1, seed ^ (i as u64) << 21)
        } else {
            generators::localized_growth_delta(&mirror, (i % 4) as u32, 3, seed ^ (i as u64) << 9)
        };
        mirror = d.apply(&mirror).new_graph().clone();
        deltas.push(d);
    }
    deltas
}

fn feed(s: &mut ServiceSession, deltas: &[GraphDelta], flush_every: usize) {
    for (i, d) in deltas.iter().enumerate() {
        s.ingest(d).expect("valid generated delta");
        if flush_every > 0 && (i + 1) % flush_every == 0 {
            s.flush().expect("flush");
        }
    }
}

/// The recovery contract, field by field.
fn assert_bit_identical(recovered: &ServiceSession, truth: &ServiceSession, ctx: &str) {
    assert_eq!(
        recovered.inner().graph(),
        truth.inner().graph(),
        "{ctx}: graph differs"
    );
    assert_eq!(
        recovered.assignment(),
        truth.assignment(),
        "{ctx}: partition assignment differs"
    );
    assert_eq!(
        recovered.inner().base_of_current(),
        truth.inner().base_of_current(),
        "{ctx}: composed id map differs"
    );
    assert_eq!(recovered.steps(), truth.steps(), "{ctx}: steps differ");
    assert_eq!(
        recovered.inner().pending_deltas(),
        truth.inner().pending_deltas(),
        "{ctx}: pending queue differs"
    );
    assert_eq!(
        recovered.deltas_received(),
        truth.deltas_received(),
        "{ctx}: delta counter differs"
    );
    assert_eq!(
        recovered.inner().total_moved(),
        truth.inner().total_moved(),
        "{ctx}: total moved differs"
    );
    assert_eq!(
        recovered.inner().needs_scratch(),
        truth.inner().needs_scratch(),
        "{ctx}: scratch flag differs"
    );
}

proptest! {
    #![proptest_config(common::tier1_config(24))]

    /// Kill the durable session after a random prefix of the stream
    /// (mid-batch included: nothing forces the queue empty at the
    /// crash); the recovered session must be bit-identical to a fresh
    /// replay of that prefix, and stay bit-identical while both
    /// continue through the rest of the stream.
    #[test]
    fn crash_anywhere_in_stream_recovers_bit_identical(
        n in 5usize..9,
        k in 1usize..9,
        crash_at_raw in 0usize..9,
        parts in 2usize..4,
        // Packed small knobs (the vendored proptest caps tuple arity):
        // repartition policy × snapshot policy × refined × flush cadence.
        knobs in 0u32..90,
        seed in any::<u64>(),
    ) {
        let policy_ix = (knobs % 3) as u8;
        let snap_ix = ((knobs / 3) % 3) as u8;
        let refined = (knobs / 9) % 2 == 1;
        let flush_every = (knobs / 18) as usize % 5;
        let crash_at = crash_at_raw.min(k);
        let dir = scratch_dir("stream", seed ^ k as u64);
        let base = generators::grid(n, n);
        let cfg = config(parts, policy_ix, refined);
        let deltas = delta_stream(&base, k, seed);

        let mut durable = ServiceSession::open_durable(
            base.clone(), cfg.clone(), &dir, "p", snapshot_policy(snap_ix),
        ).expect("open durable");
        let mut truth = ServiceSession::open(base, cfg);
        feed(&mut durable, &deltas[..crash_at], flush_every);
        feed(&mut truth, &deltas[..crash_at], flush_every);
        // Crash: the in-memory half simply ceases to exist.
        drop(durable);

        let rec = recover_session(&dir, snapshot_policy(snap_ix)).expect("recover");
        prop_assert_eq!(rec.sid.as_str(), "p");
        prop_assert!(rec.warning.is_none(), "clean log must recover warning-free");
        let mut recovered = rec.session;
        assert_bit_identical(&recovered, &truth, "at crash point");

        // Both halves keep serving the rest of the stream identically
        // (the recovered one keeps journaling too).
        feed(&mut recovered, &deltas[crash_at..], flush_every);
        feed(&mut truth, &deltas[crash_at..], flush_every);
        assert_bit_identical(&recovered, &truth, "after post-recovery traffic");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Torn write: truncate the WAL at a random *byte* offset. Recovery
    /// must come back warning-or-not, bit-identical to replaying
    /// exactly the records that survived in full.
    #[test]
    fn wal_truncated_at_random_byte_offset_recovers_prefix(
        n in 5usize..9,
        k in 1usize..8,
        parts in 2usize..4,
        cut_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let dir = scratch_dir("torn", seed ^ (k as u64) << 32);
        let base = generators::grid(n, n);
        // every:1 keeps all records deltas, so "records survived" maps
        // 1:1 onto a stream prefix we can replay for ground truth.
        let cfg = config(parts, 0, true);
        let deltas = delta_stream(&base, k, seed);
        let mut durable = ServiceSession::open_durable(
            base.clone(), cfg.clone(), &dir, "t", SnapshotPolicy::Never,
        ).expect("open durable");
        feed(&mut durable, &deltas, 0);
        drop(durable);

        // Tear the log at a random byte offset past the header.
        let wal = dir.join("wal-0.log");
        let len = std::fs::metadata(&wal).expect("wal exists").len();
        let cut = 16 + ((len - 16) as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let rec = recover_session(&dir, SnapshotPolicy::Never).expect("recover");
        let survived = rec.session.deltas_received();
        prop_assert!(survived <= k);
        if survived < k {
            prop_assert!(rec.warning.is_some(), "dropped records must be reported");
        }
        let mut truth = ServiceSession::open(base, cfg);
        feed(&mut truth, &deltas[..survived], 0);
        assert_bit_identical(&rec.session, &truth, "after torn-write recovery");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Regression (satellite): a corrupt trailing record — bit flip, not
/// truncation — is detected by the frame checksum, reported, dropped,
/// and the session recovers to the last intact record. No panic, and
/// the reopened log accepts new traffic.
#[test]
fn corrupt_trailing_record_is_dropped_not_fatal() {
    let dir = scratch_dir("corrupt-tail", 1);
    let base = generators::grid(6, 6);
    let cfg = config(2, 0, true);
    let deltas = delta_stream(&base, 5, 0xC0FFEE);
    let mut durable =
        ServiceSession::open_durable(base.clone(), cfg.clone(), &dir, "c", SnapshotPolicy::Never)
            .expect("open durable");
    feed(&mut durable, &deltas, 0);
    drop(durable);

    // Flip a byte inside the last frame's payload.
    let wal = dir.join("wal-0.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x55;
    std::fs::write(&wal, &bytes).unwrap();

    let rec = recover_session(&dir, SnapshotPolicy::Never).expect("recover");
    let warning = rec.warning.expect("corruption must be reported");
    assert!(warning.contains("checksum"), "{warning}");
    assert_eq!(rec.session.deltas_received(), 4, "last record dropped");
    let mut truth = ServiceSession::open(base, cfg);
    feed(&mut truth, &deltas[..4], 0);
    assert_bit_identical(&rec.session, &truth, "after corrupt-tail drop");

    // The log was truncated back to the intact prefix: new traffic
    // journals and survives another restart.
    let mut recovered = rec.session;
    recovered.ingest(&deltas[4]).expect("replacement delta");
    drop(recovered);
    let rec2 = recover_session(&dir, SnapshotPolicy::Never).expect("re-recover");
    assert!(rec2.warning.is_none(), "{:?}", rec2.warning);
    assert_eq!(rec2.session.deltas_received(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

/// Assemble a session directory from named files of other directories.
fn assemble(tag: &str, files: &[(&Path, &str, &str)]) -> PathBuf {
    let dir = scratch_dir(tag, 0xA55E);
    std::fs::create_dir_all(&dir).unwrap();
    for (src, name, dst) in files {
        std::fs::copy(src.join(name), dir.join(dst))
            .unwrap_or_else(|e| panic!("copy {name} for {tag}: {e}"));
    }
    dir
}

/// Crash-point sweep over the snapshot-rotation protocol (satellite):
/// `write snap-(q+1).tmp → fsync → rename → fsync dir → create
/// wal-(q+1) → fsync dir → delete old pair`. A kill between any two
/// steps leaves at least one complete `(snapshot, WAL)` lineage on
/// disk, so recovery from every intermediate state must be
/// bit-identical to the never-crashed replay. The intermediate states
/// are reassembled from directory copies taken before and after a real
/// rotation.
#[test]
fn rotation_crash_points_all_recover_bit_identical() {
    let base = generators::grid(6, 6);
    let cfg = config(2, 0, true); // every:1 — each delta applies immediately
    let deltas = delta_stream(&base, 5, 0x0D15C0);
    let dir = scratch_dir("rotation", 5);
    let mut s =
        ServiceSession::open_durable(base.clone(), cfg.clone(), &dir, "r", SnapshotPolicy::Never)
            .expect("open durable");
    feed(&mut s, &deltas, 0);
    let mut truth = ServiceSession::open(base, cfg);
    feed(&mut truth, &deltas, 0);

    // `pre`: the state just before the rotation (snap-0 + full wal-0).
    let pre = assemble(
        "rot-pre",
        &[
            (&dir, "meta", "meta"),
            (&dir, "snap-0.snap", "snap-0.snap"),
            (&dir, "wal-0.log", "wal-0.log"),
        ],
    );
    // Drive the rotation by hand at the store level, then capture
    // `post` (snap-1 + fresh empty wal-1; old pair deleted).
    let mut st = s.detach_store().expect("session is durable");
    st.snapshot_now(SessionState {
        graph: s.inner().graph(),
        part: s.inner().partitioning(),
        base_of_current: s.inner().base_of_current(),
        steps: s.inner().steps() as u64,
        total_moved: s.inner().total_moved(),
        deltas_received: s.deltas_received() as u64,
        needs_scratch: s.inner().needs_scratch(),
    })
    .expect("forced rotation");
    drop(st);
    assert!(
        !dir.join("snap-0.snap").exists() && !dir.join("wal-0.log").exists(),
        "rotation must have retired the old pair"
    );
    let post = &dir;

    // Each interruption point, as the file set a kill would leave.
    let states: Vec<(&str, PathBuf)> = vec![
        // Killed after writing the tmp snapshot, before the rename:
        // the tmp file must be ignored, the old lineage replayed.
        (
            "tmp written, not renamed",
            assemble(
                "rot-s1",
                &[
                    (pre.as_path(), "meta", "meta"),
                    (pre.as_path(), "snap-0.snap", "snap-0.snap"),
                    (pre.as_path(), "wal-0.log", "wal-0.log"),
                    (post.as_path(), "snap-1.snap", "snap-1.tmp"),
                ],
            ),
        ),
        // Killed after the rename, before the new WAL existed: benign
        // interrupted rotation — the new snapshot wins, empty tail.
        (
            "renamed, no new wal",
            assemble(
                "rot-s2",
                &[
                    (pre.as_path(), "meta", "meta"),
                    (pre.as_path(), "snap-0.snap", "snap-0.snap"),
                    (pre.as_path(), "wal-0.log", "wal-0.log"),
                    (post.as_path(), "snap-1.snap", "snap-1.snap"),
                ],
            ),
        ),
        // Killed after creating the new WAL, before deleting the old
        // pair: both lineages complete; the newest wins.
        (
            "old pair not deleted",
            assemble(
                "rot-s3",
                &[
                    (pre.as_path(), "meta", "meta"),
                    (pre.as_path(), "snap-0.snap", "snap-0.snap"),
                    (pre.as_path(), "wal-0.log", "wal-0.log"),
                    (post.as_path(), "snap-1.snap", "snap-1.snap"),
                    (post.as_path(), "wal-1.log", "wal-1.log"),
                ],
            ),
        ),
        // Killed between the two deletes (snapshot goes first).
        (
            "old wal lingers",
            assemble(
                "rot-s4",
                &[
                    (pre.as_path(), "meta", "meta"),
                    (pre.as_path(), "wal-0.log", "wal-0.log"),
                    (post.as_path(), "snap-1.snap", "snap-1.snap"),
                    (post.as_path(), "wal-1.log", "wal-1.log"),
                ],
            ),
        ),
    ];
    for (what, state_dir) in states {
        let rec = recover_session(&state_dir, SnapshotPolicy::Never)
            .unwrap_or_else(|e| panic!("recover `{what}`: {e}"));
        assert_bit_identical(&rec.session, &truth, what);
        std::fs::remove_dir_all(&state_dir).ok();
    }
    std::fs::remove_dir_all(&pre).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: `inspect` and `recover` must agree that a missing WAL is
/// a benign interrupted rotation — on the *same* fixture, `inspect`
/// reports a note (not corruption) and `recover` comes back
/// bit-identical with only a warning.
#[test]
fn missing_wal_is_benign_for_inspect_and_recover_alike() {
    let base = generators::grid(6, 6);
    let cfg = config(2, 0, true);
    let deltas = delta_stream(&base, 4, 0xBE9);
    let dir = scratch_dir("nowal", 8);
    let mut s = ServiceSession::open_durable(
        base.clone(),
        cfg.clone(),
        &dir,
        "b",
        SnapshotPolicy::EveryK(2),
    )
    .expect("open durable");
    feed(&mut s, &deltas, 0);
    let mut truth = ServiceSession::open(base, cfg);
    feed(&mut truth, &deltas, 0);
    drop(s);
    // Reproduce the crash window: the current WAL never got created.
    let seq = (0..10)
        .rev()
        .find(|q| dir.join(format!("snap-{q}.snap")).exists())
        .expect("some snapshot");
    std::fs::remove_file(dir.join(format!("wal-{seq}.log"))).expect("remove current wal");

    let insp = SessionStore::inspect(&dir).expect("inspect survives a missing WAL");
    assert!(
        insp.corruption.is_none(),
        "interrupted rotation misreported as corruption: {:?}",
        insp.corruption
    );
    let note = insp.note.expect("the missing WAL is still worth a note");
    assert!(note.contains("missing"), "{note}");
    assert_eq!(
        insp.tail_deltas + insp.tail_flushes,
        0,
        "tail must be empty"
    );

    let rec = recover_session(&dir, SnapshotPolicy::EveryK(2)).expect("recover");
    let warning = rec
        .warning
        .clone()
        .expect("recovery reports the recreated WAL");
    assert!(warning.contains("missing"), "{warning}");
    // EveryK(2) on 4 deltas: the last rotation compacted everything,
    // so the snapshot alone carries the full state.
    assert_bit_identical(&rec.session, &truth, "after interrupted rotation");
    // The recreated log accepts traffic: a second recovery is clean.
    drop(rec);
    let rec2 = recover_session(&dir, SnapshotPolicy::EveryK(2)).expect("re-recover");
    assert!(rec2.warning.is_none(), "{:?}", rec2.warning);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: only a *missing* meta file may be read as
/// "not a session directory". Any other I/O failure (here EISDIR, from
/// meta existing as a directory) must abort recovery loudly instead of
/// silently skipping the session.
#[test]
fn meta_io_error_is_not_mistaken_for_missing() {
    let dir = scratch_dir("badmeta", 6);
    std::fs::create_dir_all(dir.join("meta")).unwrap();
    let Err(err) = SessionStore::recover(&dir, SnapshotPolicy::Never) else {
        panic!("meta-as-directory cannot recover");
    };
    assert!(
        matches!(err, StoreError::Io(_)),
        "EISDIR must abort loudly, got: {err}"
    );

    // A genuinely absent meta still reads as "not a session dir".
    let empty = scratch_dir("nometa", 7);
    std::fs::create_dir_all(&empty).unwrap();
    let Err(err) = SessionStore::recover(&empty, SnapshotPolicy::Never) else {
        panic!("empty dir is no session");
    };
    assert!(matches!(err, StoreError::Missing(_)), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

/// The SPMD parallel driver recovers too: worker threads and backend
/// state are reconstructed from config, not persisted.
#[test]
fn parallel_session_recovers_bit_identical() {
    let dir = scratch_dir("parallel", 2);
    let base = generators::grid(8, 8);
    let mut cfg = config(4, 1, true);
    cfg.workers = 2;
    let deltas = delta_stream(&base, 6, 99);
    let mut durable = ServiceSession::open_durable(
        base.clone(),
        cfg.clone(),
        &dir,
        "w",
        SnapshotPolicy::EveryK(3),
    )
    .expect("open durable");
    let mut truth = ServiceSession::open(base, cfg);
    feed(&mut durable, &deltas[..4], 0);
    feed(&mut truth, &deltas[..4], 0);
    drop(durable);
    let rec = recover_session(&dir, SnapshotPolicy::EveryK(3)).expect("recover");
    let mut recovered = rec.session;
    assert_bit_identical(&recovered, &truth, "parallel at crash point");
    feed(&mut recovered, &deltas[4..], 0);
    feed(&mut truth, &deltas[4..], 0);
    assert_bit_identical(&recovered, &truth, "parallel after recovery");
    std::fs::remove_dir_all(&dir).ok();
}
