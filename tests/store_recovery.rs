//! Crash-recovery property suite: for any random churn scenario,
//! killing the durable session at a random point — between requests or
//! at a random byte offset *inside* the WAL — and recovering from disk
//! yields a session bit-identical to the uninterrupted single-threaded
//! replay: same graph, same partition assignment, same composed
//! identity map, same counters. Failure seeds persist to
//! `tests/regressions/`.

mod common;

use igp::graph::{generators, CsrGraph, GraphDelta};
use igp::service::durable::recover_session;
use igp::service::session::{InitPartition, ServiceSession, SessionConfig};
use igp::service::{RepartitionPolicy, SnapshotPolicy};
use proptest::prelude::*;
use std::path::PathBuf;

/// A scratch session directory, unique per test case.
fn scratch_dir(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("igp-recovery-{}-{tag}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(parts: usize, policy_ix: u8, refined: bool) -> SessionConfig {
    let mut cfg = SessionConfig::new(parts);
    cfg.init = InitPartition::RoundRobin;
    cfg.refined = refined;
    cfg.policy = match policy_ix % 3 {
        0 => RepartitionPolicy::EveryK(1),
        1 => RepartitionPolicy::EveryK(3),
        _ => "cost".parse().unwrap(),
    };
    cfg
}

fn snapshot_policy(ix: u8) -> SnapshotPolicy {
    match ix % 3 {
        0 => SnapshotPolicy::Never,
        1 => SnapshotPolicy::EveryK(2),
        _ => SnapshotPolicy::default(),
    }
}

/// The event stream one scenario feeds: deltas, with an explicit flush
/// sprinkled in every few events (flushes are journaled as markers, so
/// they exercise the non-delta record path).
fn delta_stream(base: &CsrGraph, k: usize, seed: u64) -> Vec<GraphDelta> {
    let mut mirror = base.clone();
    let mut deltas = Vec::with_capacity(k);
    for i in 0..k {
        let d = if i % 3 == 2 {
            generators::random_churn_delta(&mirror, 2, 1, seed ^ (i as u64) << 21)
        } else {
            generators::localized_growth_delta(&mirror, (i % 4) as u32, 3, seed ^ (i as u64) << 9)
        };
        mirror = d.apply(&mirror).new_graph().clone();
        deltas.push(d);
    }
    deltas
}

fn feed(s: &mut ServiceSession, deltas: &[GraphDelta], flush_every: usize) {
    for (i, d) in deltas.iter().enumerate() {
        s.ingest(d).expect("valid generated delta");
        if flush_every > 0 && (i + 1) % flush_every == 0 {
            s.flush().expect("flush");
        }
    }
}

/// The recovery contract, field by field.
fn assert_bit_identical(recovered: &ServiceSession, truth: &ServiceSession, ctx: &str) {
    assert_eq!(
        recovered.inner().graph(),
        truth.inner().graph(),
        "{ctx}: graph differs"
    );
    assert_eq!(
        recovered.assignment(),
        truth.assignment(),
        "{ctx}: partition assignment differs"
    );
    assert_eq!(
        recovered.inner().base_of_current(),
        truth.inner().base_of_current(),
        "{ctx}: composed id map differs"
    );
    assert_eq!(recovered.steps(), truth.steps(), "{ctx}: steps differ");
    assert_eq!(
        recovered.inner().pending_deltas(),
        truth.inner().pending_deltas(),
        "{ctx}: pending queue differs"
    );
    assert_eq!(
        recovered.deltas_received(),
        truth.deltas_received(),
        "{ctx}: delta counter differs"
    );
    assert_eq!(
        recovered.inner().total_moved(),
        truth.inner().total_moved(),
        "{ctx}: total moved differs"
    );
    assert_eq!(
        recovered.inner().needs_scratch(),
        truth.inner().needs_scratch(),
        "{ctx}: scratch flag differs"
    );
}

proptest! {
    #![proptest_config(common::tier1_config(24))]

    /// Kill the durable session after a random prefix of the stream
    /// (mid-batch included: nothing forces the queue empty at the
    /// crash); the recovered session must be bit-identical to a fresh
    /// replay of that prefix, and stay bit-identical while both
    /// continue through the rest of the stream.
    #[test]
    fn crash_anywhere_in_stream_recovers_bit_identical(
        n in 5usize..9,
        k in 1usize..9,
        crash_at_raw in 0usize..9,
        parts in 2usize..4,
        // Packed small knobs (the vendored proptest caps tuple arity):
        // repartition policy × snapshot policy × refined × flush cadence.
        knobs in 0u32..90,
        seed in any::<u64>(),
    ) {
        let policy_ix = (knobs % 3) as u8;
        let snap_ix = ((knobs / 3) % 3) as u8;
        let refined = (knobs / 9) % 2 == 1;
        let flush_every = (knobs / 18) as usize % 5;
        let crash_at = crash_at_raw.min(k);
        let dir = scratch_dir("stream", seed ^ k as u64);
        let base = generators::grid(n, n);
        let cfg = config(parts, policy_ix, refined);
        let deltas = delta_stream(&base, k, seed);

        let mut durable = ServiceSession::open_durable(
            base.clone(), cfg.clone(), &dir, "p", snapshot_policy(snap_ix),
        ).expect("open durable");
        let mut truth = ServiceSession::open(base, cfg);
        feed(&mut durable, &deltas[..crash_at], flush_every);
        feed(&mut truth, &deltas[..crash_at], flush_every);
        // Crash: the in-memory half simply ceases to exist.
        drop(durable);

        let rec = recover_session(&dir, snapshot_policy(snap_ix)).expect("recover");
        prop_assert_eq!(rec.sid.as_str(), "p");
        prop_assert!(rec.warning.is_none(), "clean log must recover warning-free");
        let mut recovered = rec.session;
        assert_bit_identical(&recovered, &truth, "at crash point");

        // Both halves keep serving the rest of the stream identically
        // (the recovered one keeps journaling too).
        feed(&mut recovered, &deltas[crash_at..], flush_every);
        feed(&mut truth, &deltas[crash_at..], flush_every);
        assert_bit_identical(&recovered, &truth, "after post-recovery traffic");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Torn write: truncate the WAL at a random *byte* offset. Recovery
    /// must come back warning-or-not, bit-identical to replaying
    /// exactly the records that survived in full.
    #[test]
    fn wal_truncated_at_random_byte_offset_recovers_prefix(
        n in 5usize..9,
        k in 1usize..8,
        parts in 2usize..4,
        cut_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let dir = scratch_dir("torn", seed ^ (k as u64) << 32);
        let base = generators::grid(n, n);
        // every:1 keeps all records deltas, so "records survived" maps
        // 1:1 onto a stream prefix we can replay for ground truth.
        let cfg = config(parts, 0, true);
        let deltas = delta_stream(&base, k, seed);
        let mut durable = ServiceSession::open_durable(
            base.clone(), cfg.clone(), &dir, "t", SnapshotPolicy::Never,
        ).expect("open durable");
        feed(&mut durable, &deltas, 0);
        drop(durable);

        // Tear the log at a random byte offset past the header.
        let wal = dir.join("wal-0.log");
        let len = std::fs::metadata(&wal).expect("wal exists").len();
        let cut = 16 + ((len - 16) as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let rec = recover_session(&dir, SnapshotPolicy::Never).expect("recover");
        let survived = rec.session.deltas_received();
        prop_assert!(survived <= k);
        if survived < k {
            prop_assert!(rec.warning.is_some(), "dropped records must be reported");
        }
        let mut truth = ServiceSession::open(base, cfg);
        feed(&mut truth, &deltas[..survived], 0);
        assert_bit_identical(&rec.session, &truth, "after torn-write recovery");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Regression (satellite): a corrupt trailing record — bit flip, not
/// truncation — is detected by the frame checksum, reported, dropped,
/// and the session recovers to the last intact record. No panic, and
/// the reopened log accepts new traffic.
#[test]
fn corrupt_trailing_record_is_dropped_not_fatal() {
    let dir = scratch_dir("corrupt-tail", 1);
    let base = generators::grid(6, 6);
    let cfg = config(2, 0, true);
    let deltas = delta_stream(&base, 5, 0xC0FFEE);
    let mut durable =
        ServiceSession::open_durable(base.clone(), cfg.clone(), &dir, "c", SnapshotPolicy::Never)
            .expect("open durable");
    feed(&mut durable, &deltas, 0);
    drop(durable);

    // Flip a byte inside the last frame's payload.
    let wal = dir.join("wal-0.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x55;
    std::fs::write(&wal, &bytes).unwrap();

    let rec = recover_session(&dir, SnapshotPolicy::Never).expect("recover");
    let warning = rec.warning.expect("corruption must be reported");
    assert!(warning.contains("checksum"), "{warning}");
    assert_eq!(rec.session.deltas_received(), 4, "last record dropped");
    let mut truth = ServiceSession::open(base, cfg);
    feed(&mut truth, &deltas[..4], 0);
    assert_bit_identical(&rec.session, &truth, "after corrupt-tail drop");

    // The log was truncated back to the intact prefix: new traffic
    // journals and survives another restart.
    let mut recovered = rec.session;
    recovered.ingest(&deltas[4]).expect("replacement delta");
    drop(recovered);
    let rec2 = recover_session(&dir, SnapshotPolicy::Never).expect("re-recover");
    assert!(rec2.warning.is_none(), "{:?}", rec2.warning);
    assert_eq!(rec2.session.deltas_received(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

/// The SPMD parallel driver recovers too: worker threads and backend
/// state are reconstructed from config, not persisted.
#[test]
fn parallel_session_recovers_bit_identical() {
    let dir = scratch_dir("parallel", 2);
    let base = generators::grid(8, 8);
    let mut cfg = config(4, 1, true);
    cfg.workers = 2;
    let deltas = delta_stream(&base, 6, 99);
    let mut durable = ServiceSession::open_durable(
        base.clone(),
        cfg.clone(),
        &dir,
        "w",
        SnapshotPolicy::EveryK(3),
    )
    .expect("open durable");
    let mut truth = ServiceSession::open(base, cfg);
    feed(&mut durable, &deltas[..4], 0);
    feed(&mut truth, &deltas[..4], 0);
    drop(durable);
    let rec = recover_session(&dir, SnapshotPolicy::EveryK(3)).expect("recover");
    let mut recovered = rec.session;
    assert_bit_identical(&recovered, &truth, "parallel at crash point");
    feed(&mut recovered, &deltas[4..], 0);
    feed(&mut truth, &deltas[4..], 0);
    assert_bit_identical(&recovered, &truth, "parallel after recovery");
    std::fs::remove_dir_all(&dir).ok();
}
