//! Property and concurrency tests for the igp-obs metric primitives:
//! histogram quantile estimates must stay within the documented
//! bucket-width error bound of the exact sorted-sample quantiles for
//! arbitrary magnitude-spread inputs, and the lock-free counters and
//! histograms must not lose updates under multi-threaded hammering.

mod common;

use igp::obs::{Counter, Gauge, Histogram};
use proptest::prelude::*;
use std::sync::Arc;

/// Exact `q`-quantile of a sample set: the rank-`⌈q·n⌉` element of the
/// sorted samples (1-based, clamped to rank ≥ 1) — the definition the
/// histogram estimates (DESIGN.md §10.3).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(common::tier1_config(64))]

    /// For any sample set spanning magnitudes from the exact linear
    /// region (< 8) up to ~2^55, every quantile estimate `e` of the
    /// exact quantile `x` satisfies `x ≤ e ≤ x + x/8 + 1`: never an
    /// underestimate, and at most one bucket width (≤ 1/8 of the lower
    /// bound, plus the ±1 integer slack) above.
    #[test]
    fn quantile_estimates_within_bucket_error(
        samples in prop::collection::vec(
            (0u64..256, 0u32..48).prop_map(|(m, s)| m << s),
            1..400,
        ),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        // Exact aggregates are exact, not bucketed.
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());

        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            prop_assert!(
                est >= exact,
                "q={q}: estimate {est} below exact {exact}"
            );
            prop_assert!(
                est <= exact + exact / 8 + 1,
                "q={q}: estimate {est} above bound for exact {exact}"
            );
            // The clamp to the observed max must always hold.
            prop_assert!(est <= h.max());
        }
    }

    /// Quantiles are monotone in `q` — a p99 can never report below a
    /// p50 on the same data.
    #[test]
    fn quantiles_monotone_in_q(
        samples in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        let qs = [0.0, 0.5, 0.9, 0.95, 0.99, 1.0];
        let ests: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        prop_assert!(
            ests.windows(2).all(|w| w[0] <= w[1]),
            "quantiles not monotone: {ests:?}"
        );
    }
}

/// `HAMMER_THREADS × HAMMER_OPS` concurrent updates against one shared
/// counter, gauge and histogram: the relaxed-atomic recording paths
/// must not lose a single update.
#[test]
fn concurrent_hammer_loses_no_updates() {
    const HAMMER_THREADS: usize = 8;
    const HAMMER_OPS: u64 = 20_000;

    let counter = Arc::new(Counter::new());
    let gauge = Arc::new(Gauge::new());
    let hist = Arc::new(Histogram::new());

    let workers: Vec<_> = (0..HAMMER_THREADS)
        .map(|t| {
            let counter = Arc::clone(&counter);
            let gauge = Arc::clone(&gauge);
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..HAMMER_OPS {
                    counter.inc();
                    counter.add(2);
                    gauge.add(1);
                    gauge.add(-1);
                    gauge.add(3);
                    // Spread observations across octaves so the threads
                    // also contend on distinct bucket slots.
                    hist.observe((t as u64 + 1) << (i % 20));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let n = (HAMMER_THREADS as u64) * HAMMER_OPS;
    assert_eq!(counter.get(), 3 * n, "counter lost updates");
    assert_eq!(gauge.get(), 3 * n as i64, "gauge lost updates");
    assert_eq!(hist.count(), n, "histogram lost observations");
    let expect_sum: u64 = (0..HAMMER_THREADS as u64)
        .map(|t| (0..HAMMER_OPS).map(|i| (t + 1) << (i % 20)).sum::<u64>())
        .sum();
    assert_eq!(hist.sum(), expect_sum, "histogram sum drifted");
    assert_eq!(hist.max(), (HAMMER_THREADS as u64) << 19);
    assert_eq!(hist.min(), 1);
    // Rank mass is conserved: the top quantile reaches the max bucket.
    assert_eq!(hist.quantile(1.0), hist.max());
}

/// The registry hands out the *same* metric under concurrent
/// registration of one (name, labels) pair, so increments from racing
/// threads all land on one counter.
#[test]
fn concurrent_registration_converges_to_one_metric() {
    const THREADS: usize = 8;
    const OPS: u64 = 1_000;

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..OPS {
                    igp::obs::registry()
                        .counter(
                            "igp_test_hammer_register_total",
                            "registration race probe",
                            vec![("kind", "race".into())],
                        )
                        .inc();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let c = igp::obs::registry().counter(
        "igp_test_hammer_register_total",
        "registration race probe",
        vec![("kind", "race".into())],
    );
    assert_eq!(c.get(), (THREADS as u64) * OPS);
}

/// 8 threads hammer the flight-recorder rings (each overwriting its own
/// ring many times over) while the main thread snapshots concurrently:
/// the seqlock must never surface a torn record — every validated
/// record's fields are self-consistent with the detail payload its
/// writer attached — and per-thread record indices must stay monotonic
/// in write order (details strictly increase along each ring).
#[test]
fn trace_ring_hammer_no_torn_records() {
    use igp::obs::trace::{self, Span};

    const THREADS: u64 = 8;
    const SPANS: u64 = 3 * trace::RING_CAP as u64; // wrap each ring 3×
                                                   // A trace-id block per thread, far from ids other tests mint.
    const BASE: u64 = 0x7e57_0000_0000_0000;

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let snapper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                seen = seen.max(trace::snapshot().len());
            }
            // One snapshot *started* after `stop` (rings settled). On a
            // single-core host this thread may never run mid-hammer —
            // an in-flight snapshot there clones the ring registry
            // before the writers even register — so only a fresh read
            // is guaranteed to see the survivors.
            seen.max(trace::snapshot().len())
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..SPANS {
                    let mut sp = Span::adopted_root(BASE | (t << 32) | i, "hammer");
                    sp.set_detail((t << 32) | (i + 1));
                    drop(sp);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let peak = snapper.join().unwrap();
    assert!(peak > 0, "concurrent snapshots never saw a record");

    // Post-join snapshot: the survivors are the newest RING_CAP spans
    // of each hammer thread (modulo records from other tests sharing
    // the rings — filtered out by trace-id block).
    let records: Vec<_> = trace::snapshot()
        .into_iter()
        .filter(|r| r.trace & 0xffff_0000_0000_0000 == BASE)
        .collect();
    assert!(
        records.len() >= THREADS as usize * (trace::RING_CAP / 2),
        "expected roughly THREADS full rings of survivors, got {}",
        records.len()
    );
    let mut by_ring: std::collections::HashMap<u64, Vec<&igp::obs::trace::SpanRecord>> =
        std::collections::HashMap::new();
    for r in &records {
        // Self-consistency: a torn record would pair a trace id from
        // one write with a detail from another.
        assert_eq!(r.name, "hammer", "foreign name on hammer trace: {r:?}");
        let (t, i) = (r.detail >> 32, (r.detail & 0xffff_ffff) - 1);
        assert_eq!(
            r.trace,
            BASE | (t << 32) | i,
            "torn record: trace/detail disagree: {r:?}"
        );
        assert!(r.parent == 0, "hammer spans are roots: {r:?}");
        by_ring.entry(r.thread).or_default().push(r);
    }
    // One writer per ring here, so ring order == write order: sorted
    // by slot index, the packed details must strictly increase.
    for (ring, mut rs) in by_ring {
        rs.sort_by_key(|r| r.index);
        for w in rs.windows(2) {
            assert!(
                w[0].detail < w[1].detail,
                "ring {ring}: non-monotonic write order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}
