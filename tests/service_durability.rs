//! Durability end to end over real TCP: a daemon in `--data-dir` mode
//! serves tenants, goes away, restarts on the same directory, and
//! every session answers `PART` bit-identically to a single-threaded
//! replay twin — then keeps serving. Plus the admission-control path:
//! a client outrunning its flushes gets a typed `ERR backpressure`.
//!
//! (The kill -9 variant of the restart runs in CI's `durability` job
//! against the release binaries; in-process we crash by dropping the
//! server, which exercises the same recovery path — the WAL is
//! appended synchronously per request, so the on-disk state at any
//! drop point is exactly a crash image.)

use igp::graph::{generators, CsrGraph, GraphDelta};
use igp::service::client::IgpClient;
use igp::service::server::{serve, ServeOptions};
use igp::service::session::{Ingest, InitPartition, ServiceSession, SessionConfig};
use igp::service::{ClientError, SnapshotPolicy};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("igp-durable-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(data_dir: &std::path::Path) -> ServeOptions {
    ServeOptions {
        shards: 4,
        data_dir: Some(data_dir.to_path_buf()),
        snapshot_policy: SnapshotPolicy::EveryK(4),
        ..Default::default()
    }
}

/// Per-tenant scenario: graph, config, and a deterministic stream.
fn scenario(i: usize) -> (CsrGraph, SessionConfig, Vec<GraphDelta>) {
    let base = generators::grid(6 + i, 6);
    let mut cfg = SessionConfig::new(2 + i % 2);
    cfg.init = InitPartition::RoundRobin;
    cfg.policy = ["every:1", "every:3", "cost"][i % 3].parse().unwrap();
    let mut mirror = base.clone();
    let mut deltas = Vec::new();
    for k in 0..10 {
        let d = generators::random_churn_delta(&mirror, 2, 1, (i as u64) << 32 | k);
        mirror = d.apply(&mirror).new_graph().clone();
        deltas.push(d);
    }
    (base, cfg, deltas)
}

/// Single-threaded ground truth over the same prefix.
fn replay(base: &CsrGraph, cfg: &SessionConfig, deltas: &[GraphDelta]) -> ServiceSession {
    let mut s = ServiceSession::open(base.clone(), cfg.clone());
    for d in deltas {
        s.ingest(d).expect("replay ingest");
    }
    s
}

#[test]
fn daemon_restart_recovers_every_session_bit_identical() {
    let dir = scratch_dir("restart");
    const TENANTS: usize = 3;
    const BEFORE: usize = 6; // deltas per tenant before the "crash"

    // Epoch 1: open tenants, stream a prefix, vanish without CLOSE.
    let server = serve("127.0.0.1:0", opts(&dir)).expect("bind");
    let addr = server.addr();
    let mut cli = IgpClient::connect(addr).expect("connect");
    for i in 0..TENANTS {
        let (base, cfg, deltas) = scenario(i);
        let sid = format!("t{i}");
        cli.open(&sid, &base, &cfg).expect("open");
        for d in &deltas[..BEFORE] {
            cli.delta(&sid, d).expect("delta");
        }
        let stat = cli.stat(&sid).expect("stat");
        assert!(
            stat.wal_records.is_some() && stat.snap_seq.is_some(),
            "durable sessions must report WAL/snapshot stats, got {stat:?}"
        );
    }
    drop(cli);
    drop(server); // the daemon is gone; only the data dir survives

    // Epoch 2: a fresh daemon on the same directory.
    let server = serve("127.0.0.1:0", opts(&dir)).expect("rebind");
    let mut cli = IgpClient::connect(server.addr()).expect("reconnect");
    let mut ids = cli.list().expect("list");
    ids.sort();
    assert_eq!(ids, vec!["t0".to_string(), "t1".into(), "t2".into()]);

    for i in 0..TENANTS {
        let (base, cfg, deltas) = scenario(i);
        let sid = format!("t{i}");
        // Bit-identical to the replay twin at the crash point…
        let truth = replay(&base, &cfg, &deltas[..BEFORE]);
        let assignment = cli.partition(&sid).expect("partition");
        assert_eq!(
            assignment,
            truth.assignment(),
            "session {sid}: recovered partition differs from replay"
        );
        let stat = cli.stat(&sid).expect("stat");
        assert_eq!(stat.steps, truth.steps(), "session {sid}: steps differ");
        assert_eq!(
            stat.pending,
            truth.inner().pending_deltas(),
            "session {sid}: pending queue differs"
        );
        // …and after recovery the session keeps serving identically.
        let truth = replay(&base, &cfg, &deltas);
        for d in &deltas[BEFORE..] {
            cli.delta(&sid, d).expect("post-recovery delta");
        }
        let assignment = cli.partition(&sid).expect("partition");
        assert_eq!(
            assignment,
            truth.assignment(),
            "session {sid}: post-recovery partition differs"
        );
    }

    // CLOSE deletes the tenant's directory: nothing resurrects.
    cli.close("t0").expect("close");
    assert!(
        !dir.join("t0").exists(),
        "CLOSE must delete the session dir"
    );
    cli.shutdown().expect("shutdown");
    server.wait();

    // Epoch 3: only the unclosed tenants come back.
    let server = serve("127.0.0.1:0", opts(&dir)).expect("rebind");
    let mut cli = IgpClient::connect(server.addr()).expect("reconnect");
    let mut ids = cli.list().expect("list");
    ids.sort();
    assert_eq!(ids, vec!["t1".to_string(), "t2".into()]);
    cli.shutdown().expect("shutdown");
    server.wait();
    std::fs::remove_dir_all(&dir).ok();
}

/// Admission control (satellite): the per-session queue cap answers
/// `ERR backpressure` — typed, non-fatal — and a FLUSH drains the
/// queue so traffic resumes.
#[test]
fn queue_cap_backpressure_is_typed_and_recoverable() {
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            queue_cap: 3,
            ..Default::default()
        },
    )
    .expect("bind");
    let mut cli = IgpClient::connect(server.addr()).expect("connect");
    let base = generators::grid(6, 6);
    let mut cfg = SessionConfig::new(2);
    cfg.init = InitPartition::RoundRobin;
    // A policy that never fires on its own: the queue only drains on
    // explicit FLUSH.
    cfg.policy = "every:1000000".parse().unwrap();
    cli.open("q", &base, &cfg).expect("open");

    let mut mirror = base.clone();
    let mut queued = Vec::new();
    for k in 0..3u64 {
        let d = generators::localized_growth_delta(&mirror, 0, 2, k);
        mirror = d.apply(&mirror).new_graph().clone();
        cli.delta("q", &d).expect("under the cap");
        queued.push(d);
    }
    let overflow = generators::localized_growth_delta(&mirror, 0, 2, 99);
    let err = cli.delta("q", &overflow).expect_err("cap reached");
    match err {
        ClientError::Server {
            ref kind,
            ref detail,
        } => {
            assert_eq!(kind, "backpressure", "{detail}");
            assert!(detail.contains("cap 3"), "{detail}");
        }
        other => panic!("expected typed server error, got {other:?}"),
    }
    // The rejected delta was not applied: the session still matches a
    // replay of the accepted prefix.
    let stat = cli.stat("q").expect("stat");
    assert_eq!(stat.pending, 3);

    // FLUSH drains the queue; the same delta is admitted afterwards.
    cli.flush("q").expect("flush").expect("3 deltas pending");
    match cli.delta("q", &overflow).expect("admitted after flush") {
        igp::service::client::DeltaAck::Queued { pending } => assert_eq!(pending, 1),
        other => panic!("policy must not fire: {other:?}"),
    }
    // Equivalence with the in-process session under the same events.
    let mut truth = ServiceSession::open(base, cfg);
    for d in &queued {
        truth.ingest(d).expect("truth ingest");
    }
    truth.flush().expect("truth flush");
    match truth.ingest(&overflow).expect("truth overflow") {
        Ingest::Queued { pending } => assert_eq!(pending, 1),
        other => panic!("{other:?}"),
    }
    let assignment = cli.partition("q").expect("partition");
    assert_eq!(assignment, truth.assignment());
    cli.shutdown().expect("shutdown");
    server.wait();
}

/// A daemon without `--data-dir` reports no WAL fields and survives a
/// restart with... nothing, which is exactly the pre-durability
/// contract (regression guard for the memory-only path).
#[test]
fn memory_only_mode_reports_no_wal_fields() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut cli = IgpClient::connect(server.addr()).expect("connect");
    let base = generators::grid(5, 5);
    let mut cfg = SessionConfig::new(2);
    cfg.init = InitPartition::RoundRobin;
    cli.open("m", &base, &cfg).expect("open");
    let stat = cli.stat("m").expect("stat");
    assert_eq!(stat.wal_records, None);
    assert_eq!(stat.wal_bytes, None);
    assert_eq!(stat.snap_seq, None);
    assert_eq!(stat.snapshots, None);
    cli.shutdown().expect("shutdown");
    server.wait();
}
