//! Coalescing-equivalence property suite: folding a queue of deltas
//! with `DeltaCoalescer` is indistinguishable from applying the queue
//! delta by delta — same [`CsrGraph`] *and* the same composed
//! vertex-identity map. Failure seeds persist to `tests/regressions/`.

mod common;

use igp::graph::coalesce::{coalesce, DeltaCoalescer};
use igp::graph::{generators, CsrGraph, GraphDelta, IncrementalGraph, NodeId, INVALID_NODE};
use proptest::prelude::*;

/// A random churn history: base graph plus `k` deltas, each generated
/// against (and valid for) the graph its predecessors produce.
fn churn_history(n: usize, extra: usize, k: usize, seed: u64) -> (CsrGraph, Vec<GraphDelta>) {
    let base = common::random_connected_graph(n, extra, seed);
    let mut deltas = Vec::with_capacity(k);
    let mut g = base.clone();
    for i in 0..k {
        let adds = 1 + (seed.wrapping_add(i as u64) % 4) as usize;
        let removes = (seed.wrapping_mul(31).wrapping_add(i as u64) % 3) as usize;
        let d = generators::random_churn_delta(&g, adds, removes, seed ^ (i as u64) << 17);
        g = d.apply(&g).new_graph().clone();
        deltas.push(d);
    }
    (base, deltas)
}

/// Apply deltas one by one, returning every per-step increment.
fn sequential_incs(base: &CsrGraph, deltas: &[GraphDelta]) -> Vec<IncrementalGraph> {
    let mut incs = Vec::with_capacity(deltas.len());
    let mut g = base.clone();
    for d in deltas {
        let inc = d.apply(&g);
        g = inc.new_graph().clone();
        incs.push(inc);
    }
    incs
}

/// Compose the per-step identity maps: the base id of final vertex `v`,
/// or `INVALID_NODE` if any step introduced it.
fn composed_base_of(incs: &[IncrementalGraph], v: NodeId) -> NodeId {
    let mut id = v;
    for inc in incs.iter().rev() {
        id = inc.old_of_new(id);
        if id == INVALID_NODE {
            return INVALID_NODE;
        }
    }
    id
}

proptest! {
    #![proptest_config(common::tier1_config(96))]

    /// The headline equivalence: coalesced apply ≡ sequential fold,
    /// for the graph and for the full identity map.
    #[test]
    fn coalesce_equals_sequential_application(
        n in 6usize..36,
        extra in 0usize..24,
        k in 1usize..7,
        seed in any::<u64>(),
    ) {
        let (base, deltas) = churn_history(n, extra, k, seed);
        let incs = sequential_incs(&base, &deltas);
        let final_seq = incs.last().unwrap().new_graph();

        let net = coalesce(base.num_vertices(), &deltas).unwrap();
        prop_assert_eq!(net.validate(base.num_vertices()), Ok(()));
        let inc_net = net.apply(&base);

        // Identical graphs (structure, vertex weights, edge weights).
        prop_assert_eq!(inc_net.new_graph(), final_seq);
        // Identical composed identity maps, both directions.
        for v in inc_net.new_graph().vertices() {
            prop_assert_eq!(
                inc_net.old_of_new(v),
                composed_base_of(&incs, v),
                "map mismatch at final vertex {}", v
            );
        }
    }

    /// The canonical form is a fixed point: coalescing the net delta
    /// alone reproduces it exactly.
    #[test]
    fn net_delta_is_canonical_fixed_point(
        n in 6usize..30,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (base, deltas) = churn_history(n, n / 2, k, seed);
        let net = coalesce(base.num_vertices(), &deltas).unwrap();
        let again = coalesce(base.num_vertices(), std::slice::from_ref(&net)).unwrap();
        prop_assert_eq!(again, net);
    }

    /// Incremental pushes and one-shot coalescing agree, and the
    /// virtual vertex count tracks the sequential fold.
    #[test]
    fn incremental_pushes_match_one_shot(
        n in 6usize..30,
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let (base, deltas) = churn_history(n, n / 3, k, seed);
        let mut co = DeltaCoalescer::new(base.num_vertices());
        let mut g = base.clone();
        for d in &deltas {
            co.push(d).unwrap();
            g = d.apply(&g).new_graph().clone();
            prop_assert_eq!(co.n_current(), g.num_vertices());
        }
        prop_assert_eq!(co.len(), deltas.len());
        prop_assert_eq!(co.net(), coalesce(base.num_vertices(), &deltas).unwrap());
        // Dirt statistics agree with the net delta they summarize.
        let (net, dirt) = (co.net(), co.dirt());
        prop_assert_eq!(dirt.added_vertices, net.add_vertices.len());
        prop_assert_eq!(dirt.removed_vertices, net.remove_vertices.len());
        prop_assert_eq!(dirt.added_edges, net.add_edges.len());
        prop_assert_eq!(dirt.removed_edges, net.remove_edges.len());
        prop_assert_eq!(
            dirt.added_weight,
            net.add_vertices.iter().sum::<u64>()
        );
    }

    /// Every churn delta passes boundary validation against the graph
    /// it targets, and validation rejects its obvious corruptions.
    #[test]
    fn churn_deltas_validate_and_corruptions_fail(
        n in 6usize..30,
        seed in any::<u64>(),
    ) {
        let base = common::random_connected_graph(n, n / 2, seed);
        let d = generators::random_churn_delta(&base, 3, 2, seed);
        prop_assert_eq!(d.validate(n), Ok(()));
        // Out-of-range edge endpoint.
        let mut bad = d.clone();
        bad.add_edges.push((0, (n + bad.add_vertices.len()) as NodeId + 5, 1));
        prop_assert!(bad.validate(n).is_err());
        // Duplicate add.
        if let Some(&e) = d.add_edges.first() {
            let mut bad = d.clone();
            bad.add_edges.push(e);
            prop_assert!(bad.validate(n).is_err());
        }
        // Unsorted removals.
        if d.remove_vertices.len() >= 2 {
            let mut bad = d.clone();
            bad.remove_vertices.reverse();
            prop_assert!(bad.validate(n).is_err());
        }
    }
}
