//! Edge cases and failure-mode coverage across the stack: infeasible
//! balancing (the paper's "it would be better to start partitioning from
//! scratch" signal), disconnected graphs, degenerate partition counts,
//! and pathological increments.

use igp::graph::metrics::CutMetrics;
use igp::graph::{generators, CsrGraph, GraphDelta, PartId, Partitioning};
use igp::{CapPolicy, IgpConfig, IncrementalPartitioner};

/// Two disconnected islands, each wholly owned by one partition. No
/// adjacency between partitions → the balance LP has no variables and the
/// partitioner must report "not balanced" (the paper's from-scratch
/// signal) instead of looping or panicking.
#[test]
fn isolated_partitions_signal_from_scratch() {
    let mut edges = Vec::new();
    for i in 0..8u32 {
        edges.push((i, (i + 1) % 8)); // island A: cycle 0..8
        edges.push((8 + i, 8 + (i + 1) % 8)); // island B
    }
    let g = CsrGraph::from_edges(16, &edges);
    let old =
        Partitioning::from_assignment(&g, 2, (0..16).map(|v| if v < 8 { 0 } else { 1 }).collect());
    // Grow island A only → partition 0 overloaded, but nothing can move.
    let delta = GraphDelta {
        add_vertices: vec![1; 6],
        add_edges: (0..6).map(|i| (0, 16 + i, 1)).collect(),
        ..Default::default()
    };
    let inc = delta.apply(&g);
    let (part, report) = IncrementalPartitioner::igp(IgpConfig::new(2)).repartition(&inc, &old);
    assert!(
        !report.balance.balanced,
        "balance is impossible across components"
    );
    // Nothing lost: all vertices still assigned.
    assert_eq!(part.counts().iter().sum::<u32>(), 22);
}

/// P = 1 degenerates gracefully: everything in partition 0, no LPs.
#[test]
fn single_partition_trivial() {
    let g = generators::grid(5, 5);
    let old = Partitioning::all_in_one(&g, 1);
    let delta = generators::localized_growth_delta(&g, 0, 5, 3);
    let inc = delta.apply(&g);
    let (part, report) = IncrementalPartitioner::igpr(IgpConfig::new(1)).repartition(&inc, &old);
    assert!(report.balance.balanced);
    assert_eq!(part.count(0), 30);
    assert_eq!(
        CutMetrics::compute(inc.new_graph(), &part).total_cut_edges,
        0
    );
}

/// More partitions than new vertices: balance still lands within ±1.
#[test]
fn many_parts_tiny_increment() {
    let g = generators::grid(8, 8);
    // A contiguous 16-part layout (4×4 blocks of 2×2).
    let assign: Vec<PartId> = (0..64)
        .map(|v| {
            let (r, c) = (v / 8, v % 8);
            ((r / 2) * 4 + (c / 2)) as PartId
        })
        .collect();
    let old = Partitioning::from_assignment(&g, 16, assign);
    let delta = generators::localized_growth_delta(&g, 0, 3, 9);
    let inc = delta.apply(&g);
    let (part, report) = IncrementalPartitioner::igp(IgpConfig::new(16)).repartition(&inc, &old);
    assert!(report.balance.balanced);
    let (min, max) = (
        part.counts().iter().min().unwrap(),
        part.counts().iter().max().unwrap(),
    );
    assert!(max - min <= 1, "{:?}", part.counts());
}

/// Pure-deletion increment: vertices disappear, balance restores.
#[test]
fn shrink_only_increment() {
    let g = generators::grid(6, 8);
    let assign: Vec<PartId> = (0..48).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
    let old = Partitioning::from_assignment(&g, 2, assign);
    // Delete 3 scattered vertices from partition 1's side (alternate rows
    // of column 6, keeping the graph connected).
    let delta = GraphDelta {
        remove_vertices: vec![6, 22, 38],
        ..Default::default()
    };
    let inc = delta.apply(&g);
    assert!(igp::graph::traversal::is_connected(inc.new_graph()));
    let (part, report) = IncrementalPartitioner::igp(IgpConfig::new(2)).repartition(&inc, &old);
    assert!(report.balance.balanced, "{report}");
    let diff = part.count(0).abs_diff(part.count(1));
    assert!(diff <= 1, "{:?}", part.counts());
    assert_eq!(part.counts().iter().sum::<u32>(), 45);
}

/// An increment that rewires edges without adding vertices still triggers
/// re-layering/refinement but no balancing movement.
#[test]
fn edge_only_increment() {
    let g = generators::cycle(12);
    let assign: Vec<PartId> = (0..12).map(|v| (v / 4) as PartId).collect();
    let old = Partitioning::from_assignment(&g, 3, assign);
    let delta = GraphDelta {
        add_edges: vec![(0, 6, 1), (2, 8, 1)],
        remove_edges: vec![(3, 4)],
        ..Default::default()
    };
    let inc = delta.apply(&g);
    let (part, report) = IncrementalPartitioner::igpr(IgpConfig::new(3)).repartition(&inc, &old);
    assert!(report.balance.balanced);
    assert_eq!(
        report.balance.total_moved, 0,
        "counts unchanged → no balancing moves"
    );
    assert_eq!(part.counts(), &[4, 4, 4]);
}

/// Strict caps with an overload exceeding one partition's size: the
/// δ-staging machinery must converge (paper §2.3's hard case).
#[test]
fn overload_bigger_than_partition() {
    let side = 24usize;
    let g = generators::grid(side, side); // 576 vertices
    let assign: Vec<PartId> = (0..side * side)
        .map(|v| {
            let (r, c) = (v / side, v % side);
            ((r / 12) * 2 + c / 12) as PartId // 4 parts of 144
        })
        .collect();
    let old = Partitioning::from_assignment(&g, 4, assign);
    // +200 vertices all at the corner → partition 0 nearly doubles.
    let delta = generators::localized_growth_delta(&g, 0, 200, 17);
    let inc = delta.apply(&g);
    let mut cfg = IgpConfig::new(4);
    cfg.cap_policy = CapPolicy::Strict;
    cfg.max_stages = 12;
    let (part, report) = IncrementalPartitioner::igp(cfg).repartition(&inc, &old);
    assert!(
        report.balance.balanced,
        "stages used: {}",
        report.num_stages()
    );
    let (min, max) = (
        part.counts().iter().min().unwrap(),
        part.counts().iter().max().unwrap(),
    );
    assert!(max - min <= 1, "{:?}", part.counts());
    part.validate(inc.new_graph()).unwrap();
}

/// Star graph: one hub adjacent to everything. Every vertex's nearest
/// foreign partition is the hub's, so λ_i→(non-hub) = 0 and the strict
/// balance LP is structurally infeasible (flow can only converge on the
/// hub's partition) — the partitioner must report "not balanced" rather
/// than hang. Relaxed caps handle it.
#[test]
fn star_graph_partitioning() {
    let n = 21;
    let edges: Vec<(u32, u32)> = (1..n).map(|v| (0u32, v)).collect();
    let g = CsrGraph::from_edges(n as usize, &edges);
    let assign: Vec<PartId> = (0..n).map(|v| (v % 3) as PartId).collect();
    let old = Partitioning::from_assignment(&g, 3, assign);
    let delta = GraphDelta {
        add_vertices: vec![1; 4],
        add_edges: (0..4).map(|i| (0, n + i, 1)).collect(),
        ..Default::default()
    };
    let inc = delta.apply(&g);
    // Strict caps: structurally infeasible, reported honestly.
    let (part_s, rep_s) = IncrementalPartitioner::igpr(IgpConfig::new(3)).repartition(&inc, &old);
    assert!(
        !rep_s.balance.balanced,
        "star λ-structure cannot balance under strict caps"
    );
    assert_eq!(part_s.counts().iter().sum::<u32>(), 25);
    // Relaxed caps: balances fine.
    let mut cfg = IgpConfig::new(3);
    cfg.cap_policy = CapPolicy::Relaxed;
    let (part_r, rep_r) = IncrementalPartitioner::igpr(cfg).repartition(&inc, &old);
    assert!(rep_r.balance.balanced);
    let (min, max) = (
        part_r.counts().iter().min().unwrap(),
        part_r.counts().iter().max().unwrap(),
    );
    assert!(max - min <= 1, "{:?}", part_r.counts());
}

/// Weighted-edge graphs: refinement respects weighted gains.
#[test]
fn weighted_edges_respected_by_refinement() {
    // Adversarial case for batch LP refinement: on this weighted cycle,
    // BOTH endpoints of the weight-10 edge want to cross in opposite
    // directions — any balance-preserving batch keeps the heavy edge cut
    // (the LP engine correctly refuses to make things worse and leaves
    // the cut at 15). FM's sequential re-evaluation fixes it: after
    // moving vertex 2, vertex 3's gain vanishes and vertex 5 completes
    // the swap → cut weight 2.
    let g = CsrGraph::from_weighted_edges(
        6,
        &[
            (0, 1, 1),
            (1, 2, 1),
            (2, 3, 10),
            (3, 4, 1),
            (4, 5, 1),
            (5, 0, 5),
        ],
    );
    let old = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
    let inc = GraphDelta::default().apply(&g);

    // LP engine: monotone (never worse), exactly balanced, but stuck.
    let (part_lp, _) = IncrementalPartitioner::igpr(IgpConfig::new(2)).repartition(&inc, &old);
    let m_lp = CutMetrics::compute(&g, &part_lp);
    assert_eq!(part_lp.count(0), 3, "LP preserves balance exactly");
    assert!(m_lp.total_cut_weight <= 15, "LP must not worsen the cut");

    // FM engine: sequential re-evaluation completes the swap.
    let mut cfg = IgpConfig::new(2);
    cfg.refine.engine = igp::RefineEngine::Fm { slack: 1 };
    let (part_fm, _) = IncrementalPartitioner::igpr(cfg).repartition(&inc, &old);
    let m_fm = CutMetrics::compute(&g, &part_fm);
    assert!(
        m_fm.total_cut_weight <= 2,
        "FM should fix the heavy edges: cut weight {}",
        m_fm.total_cut_weight
    );
    assert_eq!(part_fm.count(0), 3);
}
