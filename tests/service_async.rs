//! Event-loop behaviour tests (DESIGN.md §12): request pipelining and
//! per-connection reply ordering across the worker-pool boundary, write
//! backpressure toward a non-reading client, fan-out across many
//! concurrent connections, and shutdown while connections are open.
//!
//! The wire-*semantics* suites (`service_e2e`, `service_durability`,
//! `service_repl`) prove the event loop changed nothing observable;
//! this one covers the behaviours only an event loop has.

use igp::service::client::IgpClient;
use igp::service::server::{serve, ServeOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A 3-vertex path graph as an OPEN block. `every:2` so the first
/// DELTA queues and the FLUSH afterwards repartitions.
fn path3_open(sid: &str) -> String {
    format!("OPEN {sid} parts=2 policy=every:2\n3 2\n2\n1 3\n2\nEND\n")
}

/// Pipelined requests on one connection answer strictly in order, even
/// though some verbs run inline on the loop and others round-trip
/// through the worker pool. A pool verb parks the connection, so the
/// inline verb queued behind it must *not* jump ahead.
#[test]
fn pipelined_requests_reply_in_order() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut conn = TcpStream::connect(server.addr()).expect("connect");

    // OPEN (pool) → PING (inline) → DELTA (pool) → PING (inline) →
    // FLUSH (pool) → STAT (pool) → CLOSE (pool) → PING (inline),
    // all in one write.
    let mut script = path3_open("p");
    script.push_str("PING\nDELTA p av=1 ae=0:3:1\nPING\nFLUSH p\nSTAT p\nCLOSE p\nPING\n");
    conn.write_all(script.as_bytes()).expect("write");

    let mut r = BufReader::new(&mut conn);
    let mut lines = Vec::new();
    for _ in 0..8 {
        let mut line = String::new();
        r.read_line(&mut line).expect("reply");
        lines.push(line.trim_end().to_string());
    }
    assert!(lines[0].starts_with("OK open sid=p n=3"), "{:?}", lines[0]);
    assert_eq!(lines[1], "PONG");
    assert!(lines[2].starts_with("OK queued sid=p"), "{:?}", lines[2]);
    assert_eq!(lines[3], "PONG");
    assert!(lines[4].starts_with("OK step sid=p"), "{:?}", lines[4]);
    assert!(lines[5].starts_with("OK stat sid=p"), "{:?}", lines[5]);
    assert_eq!(lines[6], "OK closed sid=p");
    assert_eq!(lines[7], "PONG");
}

/// A client that fires many large-reply requests without reading must
/// not wedge the daemon: replies buffer under write backpressure and
/// all arrive, in order, once the client drains.
#[test]
fn backpressured_writer_delivers_everything() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut cli = IgpClient::connect(server.addr()).expect("connect");
    // A big session so PART replies are large (~20 KiB each);
    // round-robin init keeps the OPEN itself cheap.
    let g = igp::graph::generators::grid(100, 100);
    let mut cfg = igp::service::session::SessionConfig::new(4);
    cfg.init = igp::service::session::InitPartition::RoundRobin;
    cli.open("big", &g, &cfg).expect("open");

    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    const REQS: usize = 100;
    for _ in 0..REQS {
        conn.write_all(b"PART big\n").expect("write");
    }
    // Let replies pile into the socket and the daemon's write buffer
    // before we start reading.
    std::thread::sleep(Duration::from_millis(300));
    let mut r = BufReader::new(&mut conn);
    let mut first = String::new();
    for i in 0..REQS {
        let mut line = String::new();
        r.read_line(&mut line).expect("reply");
        assert!(
            line.starts_with("OK part sid=big n=10000 "),
            "reply {i} malformed: {:.60}…",
            line
        );
        if i == 0 {
            first = line;
        } else {
            assert_eq!(line, first, "reply {i} differs from reply 0");
        }
    }
    // The daemon is still healthy for everyone else.
    cli.ping().expect("ping after backpressure");
}

/// Many concurrent connections, each with its own session and delta
/// stream, all served correctly by a small fixed thread count.
#[test]
fn concurrent_connections_fan_out() {
    const CONNS: usize = 24;
    let opts = ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    };
    let server = serve("127.0.0.1:0", opts).expect("bind");
    let addr = server.addr();
    let handles: Vec<_> = (0..CONNS)
        .map(|i| {
            std::thread::spawn(move || {
                let sid = format!("c{i}");
                let mut conn = TcpStream::connect(addr).expect("connect");
                let mut script = path3_open(&sid);
                script.push_str(&format!(
                    "DELTA {sid} av=1 ae=0:3:1\nFLUSH {sid}\nSTAT {sid}\nCLOSE {sid}\n"
                ));
                conn.write_all(script.as_bytes()).expect("write");
                let mut r = BufReader::new(conn);
                let mut replies = Vec::new();
                for _ in 0..5 {
                    let mut line = String::new();
                    r.read_line(&mut line).expect("reply");
                    replies.push(line);
                }
                assert!(replies[0].starts_with(&format!("OK open sid={sid} n=3")));
                assert!(replies[1].starts_with(&format!("OK queued sid={sid}")));
                assert!(replies[2].starts_with(&format!("OK step sid={sid} step=")));
                assert!(replies[3].starts_with(&format!("OK stat sid={sid} ")));
                assert!(replies[4].starts_with(&format!("OK closed sid={sid}")));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
}

/// SHUTDOWN with other connections still open: the shutting-down client
/// gets `OK bye`, idle connections see EOF, and the daemon exits.
#[test]
fn shutdown_under_open_connections() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let addr = server.addr();
    // A few idle connections the drain must sweep up.
    let idlers: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(addr).expect("c"))
        .collect();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(b"SHUTDOWN\n").expect("write");
    let mut r = BufReader::new(&mut conn);
    let mut line = String::new();
    r.read_line(&mut line).expect("bye");
    assert_eq!(line.trim_end(), "OK bye");
    server.wait(); // must return: drain closes the idlers itself
    for mut c in idlers {
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(c.read(&mut buf).unwrap_or(0), 0, "idler must see EOF");
    }
}

/// A dense burst of pipelined inline verbs must drain iteratively. The
/// regression: `flush_conn` re-entering `process_conn` after a fully
/// flushed reply nests one call chain per buffered line, so ~52k
/// buffered `PING\n` lines overflow the loop thread's stack and abort
/// the whole daemon — a remote crash from one cheap burst.
#[test]
fn pipelined_inline_burst_does_not_overflow_loop_stack() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let conn = TcpStream::connect(server.addr()).expect("connect");
    const LINES: usize = 52 * 1024;
    let mut w = conn.try_clone().expect("clone");
    // Write and read concurrently so neither socket buffer can deadlock
    // the single test thread mid-burst.
    let writer = std::thread::spawn(move || {
        let burst = "PING\n".repeat(LINES);
        w.write_all(burst.as_bytes())
    });
    let mut r = BufReader::new(conn);
    let mut line = String::new();
    for i in 0..LINES {
        line.clear();
        r.read_line(&mut line).expect("reply");
        assert_eq!(line.trim_end(), "PONG", "reply {i} of {LINES}");
    }
    writer.join().expect("writer thread").expect("burst write");
}

/// EOF mid-line still processes the final unterminated request — parity
/// with the old `BufRead`-based reader.
#[test]
fn eof_flushes_final_unterminated_line() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    conn.write_all(b"PING").expect("write"); // no trailing newline
    conn.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut r = BufReader::new(&mut conn);
    let mut line = String::new();
    r.read_line(&mut line).expect("reply");
    assert_eq!(line.trim_end(), "PONG");
}
