//! Cross-crate integration: the full paper pipeline on real (small)
//! meshes — mesh generation → RSB → localized refinement → incremental
//! repartitioning → quality/balance checks, sequential and parallel.

use igp::graph::metrics::CutMetrics;
use igp::graph::{IncrementalGraph, Partitioning};
use igp::mesh::sequence::tiny_sequence;
use igp::parallel::ParallelPartitioner;
use igp::runtime::CostModel;
use igp::spectral::{recursive_spectral_bisection, RsbOptions};
use igp::{CapPolicy, IgpConfig, IncrementalPartitioner};

fn rsb(g: &igp::graph::CsrGraph, p: usize) -> Partitioning {
    recursive_spectral_bisection(g, p, RsbOptions::default())
}

#[test]
fn full_pipeline_on_mesh_sequence() {
    let seq = tiny_sequence(1);
    let p = 4;
    let mut part = rsb(&seq.base, p);
    let base_cut = CutMetrics::compute(&seq.base, &part).total_cut_edges;
    assert!(base_cut > 0);

    let igpr = IncrementalPartitioner::igpr(IgpConfig::new(p));
    for step in &seq.steps {
        let (new_part, report) = igpr.repartition(&step.inc, &part);
        assert!(
            report.balance.balanced,
            "step {} did not balance",
            step.label
        );
        let g = step.inc.new_graph();
        new_part.validate(g).unwrap();
        // Quality stays within 2x of from-scratch RSB on this tiny mesh.
        let scratch = rsb(g, p);
        let cut_inc = CutMetrics::compute(g, &new_part).total_cut_edges;
        let cut_rsb = CutMetrics::compute(g, &scratch).total_cut_edges;
        assert!(
            (cut_inc as f64) <= 2.0 * cut_rsb as f64 + 6.0,
            "step {}: cut {} vs scratch {}",
            step.label,
            cut_inc,
            cut_rsb
        );
        part = new_part;
    }
}

#[test]
fn sequential_and_parallel_agree_on_mesh() {
    let seq = tiny_sequence(2);
    let p = 4;
    let old = rsb(&seq.base, p);
    let inc = &seq.steps[0].inc;
    let (seq_part, seq_rep) = IncrementalPartitioner::igp(IgpConfig::new(p)).repartition(inc, &old);
    for workers in [1, 2, 3] {
        let (par_part, rep) =
            ParallelPartitioner::igp(IgpConfig::new(p), workers).repartition(inc, &old);
        assert!(rep.balanced, "workers {workers}");
        assert_eq!(par_part.counts(), seq_part.counts(), "workers {workers}");
        assert_eq!(
            rep.total_moved, seq_rep.balance.total_moved,
            "movement objective must match (workers {workers})"
        );
    }
}

#[test]
fn modeled_speedup_increases_with_workers() {
    let seq = tiny_sequence(3);
    let p = 4;
    let old = rsb(&seq.base, p);
    let inc = &seq.steps[0].inc;
    let mk = |w: usize| {
        ParallelPartitioner::new(IgpConfig::new(p), w, false, CostModel::cm5())
            .repartition(inc, &old)
            .1
            .sim
            .makespan
    };
    let t1 = mk(1);
    let t2 = mk(2);
    let t4 = mk(4);
    assert!(t2 < t1, "t1={t1} t2={t2}");
    assert!(t4 < t2 * 1.05, "t2={t2} t4={t4}");
}

#[test]
fn cap_policies_both_balance_but_differ_in_deformation() {
    let seq = tiny_sequence(4);
    let p = 4;
    let old = rsb(&seq.base, p);
    let inc = &seq.steps[0].inc;
    let mut deformations = Vec::new();
    for policy in [CapPolicy::Strict, CapPolicy::Relaxed] {
        let mut cfg = IgpConfig::new(p);
        cfg.cap_policy = policy;
        let (part, rep) = IncrementalPartitioner::igp(cfg).repartition(inc, &old);
        assert!(rep.balance.balanced, "{policy:?}");
        let moved_old = inc
            .old()
            .vertices()
            .filter(|&v| {
                let nv = inc.new_of_old(v);
                nv != igp::graph::INVALID_NODE && part.part_of(nv) != old.part_of(v)
            })
            .count();
        deformations.push(moved_old);
    }
    // Strict caps never deform more than relaxed + slack (usually less).
    assert!(
        deformations[0] <= deformations[1] + 8,
        "strict {} vs relaxed {}",
        deformations[0],
        deformations[1]
    );
}

#[test]
fn metis_roundtrip_of_mesh_graph() {
    let seq = tiny_sequence(5);
    let text = igp::graph::io::write_metis(&seq.base);
    let back = igp::graph::io::read_metis(&text).unwrap();
    assert_eq!(back, seq.base);
}

#[test]
fn incremental_graph_diff_matches_mesh_edit() {
    let seq = tiny_sequence(6);
    let inc = &seq.steps[0].inc;
    let d = inc.diff();
    assert_eq!(d.add_vertices.len(), 12);
    assert!(d.remove_vertices.is_empty());
    assert!(!d.add_edges.is_empty());
    // Mesh refinement re-triangulates cavities → some old edges vanish.
    assert!(!d.remove_edges.is_empty());
    // Round-trip: applying the diff to the old graph gives the new graph.
    let re = d.apply(inc.old());
    assert_eq!(re.new_graph(), inc.new_graph());
}

#[test]
fn multilevel_agrees_with_flat_on_mesh() {
    use igp::multilevel::{multilevel_repartition, MultilevelConfig};
    let seq = tiny_sequence(7);
    let p = 4;
    let old = rsb(&seq.base, p);
    let inc = &seq.steps[0].inc;
    let cfg = IgpConfig::new(p);
    let ml = MultilevelConfig {
        coarsen_to: 40,
        max_levels: 3,
    };
    let (part, rep) = multilevel_repartition(inc, &old, &cfg, &ml);
    assert!(rep.level_sizes.len() >= 2);
    let counts = part.counts();
    let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
    assert!(spread <= 1, "{counts:?}");
}

#[test]
fn rsb_vs_rcb_on_mesh() {
    // RCB (geometric) and RSB (spectral) both balance; RSB usually cuts
    // fewer edges on irregular meshes.
    let seq = tiny_sequence(8);
    let coords: Vec<(f64, f64)> = seq.base_mesh.points.iter().map(|p| (p.x, p.y)).collect();
    let p = 4;
    let spectral = rsb(&seq.base, p);
    let geometric = igp::spectral::recursive_coordinate_bisection(&seq.base, &coords, p);
    let cut_s = CutMetrics::compute(&seq.base, &spectral).total_cut_edges;
    let cut_g = CutMetrics::compute(&seq.base, &geometric).total_cut_edges;
    assert!(cut_s > 0 && cut_g > 0);
    assert!(
        (cut_s as f64) < 1.6 * cut_g as f64,
        "spectral {cut_s} should be competitive with geometric {cut_g}"
    );
}

#[test]
fn report_lp_dominates_work_share() {
    // The paper: "Most of the time spent by our algorithm is in the
    // solution of the linear programming formulation".
    let seq = tiny_sequence(9);
    let p = 8;
    let old = rsb(&seq.base, p);
    let (_, rep) =
        IncrementalPartitioner::igpr(IgpConfig::new(p)).repartition(&seq.steps[0].inc, &old);
    assert!(
        rep.lp_work_share() > 0.3,
        "LP share {:.2} unexpectedly small",
        rep.lp_work_share()
    );
}

#[test]
fn empty_increment_stability() {
    let seq = tiny_sequence(10);
    let p = 4;
    let old = rsb(&seq.base, p);
    let inc = IncrementalGraph::new(
        seq.base.clone(),
        seq.base.clone(),
        (0..seq.base.num_vertices() as u32).collect(),
    );
    let (part, rep) = IncrementalPartitioner::igp(IgpConfig::new(p)).repartition(&inc, &old);
    // RSB output is balanced within ±1 already; IGP may shuffle at most a
    // remainder vertex or two, never more.
    assert!(
        rep.balance.total_moved <= 2,
        "moved {}",
        rep.balance.total_moved
    );
    assert!(part.count_imbalance() <= old.count_imbalance() + 1e-9);
}
