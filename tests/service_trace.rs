//! Request tracing end to end: a durable `FLUSH` must leave one causal
//! span tree in the flight recorder — parse → dispatch → queue_wait →
//! exec{repartition, wal_append} → reply, with children inside their
//! parents and starts in causal order — retrievable over the wire via
//! `TRACE DUMP`; and a follower applying replicated frames must record
//! its `repl:apply` spans under the *primary's* trace id (adopted from
//! the `REPL FRAME` reply header), so one id follows a write across
//! daemons.

mod common;

use igp::graph::generators;
use igp::service::client::IgpClient;
use igp::service::server::{serve, ServeOptions};
use igp::service::session::{InitPartition, SessionConfig};
use igp::service::{ClientError, SnapshotPolicy};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("igp-trace-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One parsed span line of a `TRACE DUMP` block:
/// `{indent}{name} +{rel}us {dur}us[ detail=N]`.
#[derive(Debug)]
struct SpanLine {
    depth: usize,
    name: String,
    rel_us: u64,
    dur_us: u64,
}

/// One rendered trace block: the `trace 0x… root=… …` header plus its
/// indented span lines.
#[derive(Debug)]
struct TraceBlock {
    trace_id: String,
    root: String,
    spans: Vec<SpanLine>,
}

impl TraceBlock {
    fn span(&self, name: &str) -> Option<&SpanLine> {
        self.spans.iter().find(|s| s.name == name)
    }

    fn has(&self, name: &str) -> bool {
        self.span(name).is_some()
    }
}

/// Split a `TRACE DUMP` body into blocks (header line + span lines).
fn parse_dump(text: &str) -> Vec<TraceBlock> {
    let mut blocks: Vec<TraceBlock> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("trace ") {
            let mut toks = rest.split_ascii_whitespace();
            let id = toks.next().unwrap_or("").to_string();
            let root = toks
                .find_map(|t| t.strip_prefix("root="))
                .unwrap_or("")
                .to_string();
            blocks.push(TraceBlock {
                trace_id: id,
                root,
                spans: Vec::new(),
            });
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let depth = (line.len() - line.trim_start().len()) / 2;
        let mut toks = line.trim().split_ascii_whitespace();
        let (Some(name), Some(rel), Some(dur)) = (toks.next(), toks.next(), toks.next()) else {
            continue;
        };
        let parse_us = |t: &str| -> Option<u64> {
            t.strip_suffix("us")?
                .trim_start_matches('+')
                .parse::<u64>()
                .ok()
        };
        let (Some(rel_us), Some(dur_us)) = (parse_us(rel), parse_us(dur)) else {
            continue;
        };
        if let Some(b) = blocks.last_mut() {
            b.spans.push(SpanLine {
                depth,
                name: name.to_string(),
                rel_us,
                dur_us,
            });
        }
    }
    blocks
}

/// A durable FLUSH leaves one trace whose spans appear in causal order
/// with children contained in their parents' windows.
#[test]
fn flush_trace_causal_order() {
    let dir = scratch_dir("flush");
    let opts = ServeOptions {
        shards: 4,
        data_dir: Some(dir.clone()),
        snapshot_policy: SnapshotPolicy::Never,
        ..Default::default()
    };
    let mut handle = serve("127.0.0.1:0", opts).expect("serve");
    let addr = handle.addr();
    let mut cli = IgpClient::connect(addr).expect("connect");

    let base = generators::grid(8, 8);
    let mut cfg = SessionConfig::new(2);
    cfg.init = InitPartition::RoundRobin;
    // Deltas only queue; the explicit FLUSH owns the repartition +
    // journaling work we want on one trace.
    cfg.policy = "every:1000".parse().unwrap();
    cli.open("tr", &base, &cfg).expect("open");
    let mut mirror = base.clone();
    for k in 0..4u64 {
        let d = generators::random_churn_delta(&mirror, 2, 1, 0x7ace << 8 | k);
        mirror = d.apply(&mirror).new_graph().clone();
        cli.delta("tr", &d).expect("delta");
    }
    cli.flush("tr").expect("flush").expect("step");

    let dump = cli.trace_dump(Some(64)).expect("trace dump");
    let blocks = parse_dump(&dump);
    // Other tests in this binary share the process-global recorder, so
    // hunt for *a* flush trace that journaled — ours is guaranteed to
    // be one of them.
    let block = blocks
        .iter()
        .filter(|b| b.root == "req:flush")
        .find(|b| b.has("wal_append"))
        .unwrap_or_else(|| panic!("no req:flush trace with wal_append in dump:\n{dump}"));

    // Every stage of the request's life is on the trace.
    for name in [
        "parse",
        "dispatch",
        "queue_wait",
        "exec",
        "repartition",
        "wal_append",
        "reply",
    ] {
        assert!(block.has(name), "missing span `{name}`:\n{dump}");
    }

    // Causal order: each stage starts no earlier than its predecessor.
    let order = ["parse", "dispatch", "queue_wait", "wal_append", "reply"];
    for pair in order.windows(2) {
        let (a, b) = (block.span(pair[0]).unwrap(), block.span(pair[1]).unwrap());
        assert!(
            a.rel_us <= b.rel_us,
            "{} (+{}us) starts after {} (+{}us):\n{dump}",
            pair[0],
            a.rel_us,
            pair[1],
            b.rel_us,
        );
    }

    // Children sit inside their parent's window (2µs rounding slack:
    // starts and durations are truncated to µs independently).
    const SLACK: u64 = 2;
    let exec = block.span("exec").unwrap();
    for child in ["repartition", "wal_append"] {
        let c = block.span(child).unwrap();
        assert!(
            c.rel_us + SLACK >= exec.rel_us
                && c.rel_us + c.dur_us <= exec.rel_us + exec.dur_us + SLACK,
            "{child} [{}, {}] outside exec [{}, {}]:\n{dump}",
            c.rel_us,
            c.rel_us + c.dur_us,
            exec.rel_us,
            exec.rel_us + exec.dur_us,
        );
        assert_eq!(c.depth, exec.depth + 1, "{child} not nested under exec");
    }

    // Root spans render at depth 1 under the header; the worker-side
    // exec span is the root's direct child.
    assert_eq!(exec.depth, 2, "exec not a direct child of the root");

    drop(cli);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `TRACE SLOW` round-trips the threshold and `TRACE DUMP 0` is a
/// protocol error, not a truncated dump.
#[test]
fn trace_slow_roundtrip_and_dump_bounds() {
    let mut handle = serve("127.0.0.1:0", ServeOptions::default()).expect("serve");
    let mut cli = IgpClient::connect(handle.addr()).expect("connect");

    assert_eq!(cli.trace_slow(250_000).expect("slow"), 250_000);
    assert_eq!(cli.trace_slow(0).expect("slow off"), 0);

    let err = cli.trace_dump(Some(0)).expect_err("DUMP 0 must be refused");
    match err {
        ClientError::Server { kind, .. } => assert_eq!(kind, "proto"),
        other => panic!("expected server proto error, got {other}"),
    }

    // The dump itself stays well-formed after the error reply.
    let _ = cli.trace_dump(None).expect("dump after error");
    drop(cli);
    handle.shutdown();
}

/// Frames applied on a follower record `repl:apply` spans under the
/// primary trace id carried by the `REPL FRAME` reply — dumped, the
/// two daemons' spans form one tree under one id.
#[test]
fn follower_apply_spans_carry_primary_trace_id() {
    let pdir = scratch_dir("repl-primary");
    let fdir = scratch_dir("repl-follower");
    let mut primary = serve(
        "127.0.0.1:0",
        ServeOptions {
            shards: 4,
            data_dir: Some(pdir.clone()),
            snapshot_policy: SnapshotPolicy::Never,
            ..Default::default()
        },
    )
    .expect("serve primary");
    let mut follower = serve(
        "127.0.0.1:0",
        ServeOptions {
            shards: 4,
            data_dir: Some(fdir.clone()),
            snapshot_policy: SnapshotPolicy::Never,
            follow: Some(primary.addr().to_string()),
            repl_interval: Duration::from_millis(15),
            ..Default::default()
        },
    )
    .expect("serve follower");

    let base = generators::grid(6, 6);
    let mut cfg = SessionConfig::new(2);
    cfg.init = InitPartition::RoundRobin;
    cfg.policy = "every:1".parse().unwrap();
    let mut cli = IgpClient::connect(primary.addr()).expect("connect primary");
    cli.open("rt", &base, &cfg).expect("open");

    // Wait for the follower to bootstrap the session BEFORE streaming
    // any deltas: work journaled before the `REPL SYNC` ships inside
    // the bootstrap snapshot+WAL and never crosses as `REPL FRAME`s —
    // and only frame application records the spans under test.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut fcli = IgpClient::connect(follower.addr()).expect("connect follower");
    loop {
        if fcli.list().is_ok_and(|sids| sids.iter().any(|s| s == "rt")) {
            break;
        }
        assert!(Instant::now() < deadline, "follower never synced `rt`");
        std::thread::sleep(Duration::from_millis(25));
    }

    let mut mirror = base.clone();
    for k in 0..6u64 {
        let d = generators::random_churn_delta(&mirror, 2, 1, 0xf0110 << 8 | k);
        mirror = d.apply(&mirror).new_graph().clone();
        cli.delta("rt", &d).expect("delta");
    }
    let want = cli.partition("rt").expect("primary part");

    // Wait until the follower caught up (replication is async).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(got) = fcli.partition("rt") {
            if got == want {
                break;
            }
        }
        assert!(Instant::now() < deadline, "follower never converged");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Both daemons share this process's recorder, so one dump holds
    // both sides; the assertion is that they merged under ONE trace id
    // — the follower adopted the id minted on the primary.
    let dump = fcli.trace_dump(Some(1024)).expect("trace dump");
    let blocks = parse_dump(&dump);
    let joined = blocks
        .iter()
        .find(|b| b.has("repl:apply") && b.root == "req:repl-frames");
    assert!(
        joined.is_some(),
        "no trace joins req:repl-frames (primary) with repl:apply (follower):\n{dump}"
    );
    let block = joined.unwrap();
    assert!(
        block.has("frame_apply"),
        "repl:apply lacks frame_apply children:\n{dump}"
    );
    assert!(
        block.trace_id.starts_with("0x"),
        "unexpected id format {}",
        block.trace_id
    );

    drop(cli);
    drop(fcli);
    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}
