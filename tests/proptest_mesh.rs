//! Property tests on the mesh substrate: Delaunay validity on random
//! point sets, refinement/derefinement invariants, smoothing stability.

mod common;

use igp::mesh::domain::Rect;
use igp::mesh::{Delaunay, Disc, MeshBuilder, Point};
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<Point>> {
    (6usize..60, any::<u64>()).prop_map(|(n, seed)| common::random_unit_points(n, seed))
}

proptest! {
    #![proptest_config(common::tier1_config(48))]

    /// Empty-circumcircle property and adjacency symmetry hold for random
    /// insertion sets; triangle count obeys Euler's bound.
    #[test]
    fn delaunay_valid_on_random_points(pts in points_strategy()) {
        let mut d = Delaunay::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        for &p in &pts {
            d.insert(p);
        }
        prop_assert_eq!(d.num_points(), pts.len());
        d.validate().unwrap();
        // Euler: triangles = 2n − h − 2 ≤ 2n − 5 for n ≥ 3 non-collinear.
        let t = d.triangles().len();
        prop_assert!(t <= 2 * pts.len());
    }

    /// Refinement adds exactly k vertices, preserves old ids, and keeps
    /// the node graph connected.
    #[test]
    fn refinement_invariants(seed in any::<u64>(), k in 1usize..20) {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let mut mb = MeshBuilder::generate(dom, 120, seed);
        let before = mb.graph();
        let old_points: Vec<Point> = (0..120u32).map(|v| mb.point(v)).collect();
        let ids = mb.refine_region(&Disc::new(Point::new(0.5, 0.5), 0.2), k);
        prop_assert_eq!(ids.len(), k);
        let after = mb.graph();
        prop_assert_eq!(after.num_vertices(), 120 + k);
        prop_assert!(igp::graph::traversal::is_connected(&after));
        // Old point coordinates untouched.
        for (v, &p) in old_points.iter().enumerate() {
            prop_assert_eq!(mb.point(v as u32), p);
        }
        prop_assert!(after.num_edges() > before.num_edges());
    }

    /// Derefinement removes ≤ k interior vertices and keeps connectivity;
    /// the removal incremental-graph round-trips.
    #[test]
    fn derefinement_invariants(seed in any::<u64>(), k in 1usize..12) {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let mut mb = MeshBuilder::generate(dom, 140, seed);
        let old = mb.graph();
        let removed = mb.coarsen_region(&Disc::new(Point::new(0.5, 0.5), 0.3), k);
        prop_assert!(removed.len() <= k);
        let new = mb.graph();
        prop_assert_eq!(new.num_vertices(), 140 - removed.len());
        prop_assert!(igp::graph::traversal::is_connected(&new));
        if !removed.is_empty() {
            let inc = igp::mesh::sequence::removal_inc(old, new, &removed);
            prop_assert_eq!(inc.removed_vertices(), removed);
        }
    }

    /// Smoothing never changes the vertex count and keeps connectivity.
    #[test]
    fn smoothing_invariants(seed in any::<u64>()) {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let mut mb = MeshBuilder::generate(dom, 100, seed);
        mb.smooth(2);
        let g = mb.graph();
        prop_assert_eq!(g.num_vertices(), 100);
        prop_assert!(igp::graph::traversal::is_connected(&g));
        g.validate().unwrap();
    }
}
