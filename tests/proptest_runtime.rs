//! Property tests on the SPMD runtime: collectives must agree with their
//! sequential definitions for every rank count and value assignment, and
//! simulated clocks must be deterministic.

mod common;

use igp::runtime::{CostModel, Machine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(common::tier1_config(32))]

    #[test]
    fn allreduce_sum_correct(p in 1usize..9, vals in prop::collection::vec(0u64..1000, 9)) {
        let (out, _) = Machine::new(p, CostModel::cm5())
            .run(|ctx| ctx.allreduce_sum(vals[ctx.rank()]));
        let expect: u64 = vals[..p].iter().sum();
        prop_assert!(out.iter().all(|&v| v == expect));
    }

    #[test]
    fn broadcast_from_any_root(p in 1usize..9, root_sel in any::<u64>(), val in any::<u32>()) {
        let root = (root_sel % p as u64) as usize;
        let (out, _) = Machine::new(p, CostModel::cm5()).run(|ctx| {
            let v = if ctx.rank() == root { Some(val) } else { None };
            ctx.broadcast(root, v)
        });
        prop_assert!(out.iter().all(|&v| v == val));
    }

    #[test]
    fn gather_orders_by_rank(p in 1usize..8, root_sel in any::<u64>()) {
        let root = (root_sel % p as u64) as usize;
        let (out, _) = Machine::new(p, CostModel::cm5())
            .run(|ctx| ctx.gather(root, ctx.rank() as u32 * 3, 1));
        let expect: Vec<u32> = (0..p as u32).map(|r| r * 3).collect();
        for (r, o) in out.iter().enumerate() {
            if r == root {
                prop_assert_eq!(o.as_ref(), Some(&expect));
            } else {
                prop_assert!(o.is_none());
            }
        }
    }

    #[test]
    fn allgather_complete(p in 1usize..8, vals in prop::collection::vec(any::<u16>(), 8)) {
        let (out, _) = Machine::new(p, CostModel::cm5())
            .run(|ctx| ctx.allgather(vals[ctx.rank()], 1));
        for o in out {
            prop_assert_eq!(&o, &vals[..p]);
        }
    }

    #[test]
    fn exchange_is_transpose(p in 1usize..7) {
        let (out, _) = Machine::new(p, CostModel::cm5()).run(|ctx| {
            let me = ctx.rank();
            let boxes: Vec<Vec<usize>> = (0..p).map(|r| vec![me * 100 + r]).collect();
            ctx.exchange(boxes, 1)
        });
        for (me, inboxes) in out.iter().enumerate() {
            for (src, b) in inboxes.iter().enumerate() {
                prop_assert_eq!(b, &vec![src * 100 + me]);
            }
        }
    }

    #[test]
    fn argmin_reduce_agrees_with_sequential(
        p in 1usize..8,
        keys in prop::collection::vec(0.0f64..100.0, 8),
    ) {
        let (out, _) = Machine::new(p, CostModel::cm5())
            .run(|ctx| ctx.allreduce_min_by_key(keys[ctx.rank()], ctx.rank() as u64, 1));
        let min_key = keys[..p].iter().cloned().fold(f64::INFINITY, f64::min);
        for (k, _) in out {
            prop_assert!((k - min_key).abs() < 1e-12);
        }
    }

    #[test]
    fn simulated_clock_deterministic(p in 1usize..6, work in prop::collection::vec(1u64..500, 6)) {
        let run = || {
            Machine::new(p, CostModel::cm5()).run(|ctx| {
                ctx.charge(work[ctx.rank()]);
                ctx.barrier();
                ctx.allreduce_sum(1)
            }).1
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.per_rank, b.per_rank);
        prop_assert_eq!(a.total_messages, b.total_messages);
        prop_assert_eq!(a.total_words, b.total_words);
    }

    #[test]
    fn makespan_at_least_critical_path(p in 1usize..6, work in prop::collection::vec(1u64..500, 6)) {
        let cost = CostModel { t_work: 1e-6, alpha: 0.0, beta: 0.0 };
        let (_, rep) = Machine::new(p, cost).run(|ctx| {
            ctx.charge(work[ctx.rank()]);
            ctx.barrier();
        });
        let max_work = *work[..p].iter().max().unwrap() as f64 * 1e-6;
        prop_assert!(rep.makespan >= max_work - 1e-12);
    }
}
