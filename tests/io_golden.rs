//! Golden-file coverage for `igp-graph::io`'s METIS-format reader and
//! writer: byte-exact serialization against committed golden files,
//! write → read → identical-CSR round-trips (fixed and randomized), and
//! malformed-input error cases.
//!
//! Regenerate the goldens after a deliberate format change with
//! `cargo test --test io_golden -- --ignored regen_golden_files`.

mod common;

use igp::graph::io::{read_metis, read_partition, write_metis, write_partition, ParseError};
use igp::graph::{generators, CsrGraph};
use std::path::Path;

const GOLDEN_DIR: &str = "tests/golden";

/// The fixed fixtures: `(file stem, graph)`. One unweighted irregular
/// graph, one grid, one fully weighted graph — covering all three `fmt`
/// header variants the writer emits.
fn golden_fixtures() -> Vec<(&'static str, CsrGraph)> {
    let cycle_plus_chord =
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
    let grid = generators::grid(4, 5);
    let mut weighted =
        CsrGraph::from_weighted_edges(5, &[(0, 1, 3), (1, 2, 1), (2, 3, 9), (3, 4, 2), (4, 0, 1)]);
    weighted.set_vertex_weights(vec![2, 1, 1, 5, 1]);
    vec![
        ("cycle_plus_chord", cycle_plus_chord),
        ("grid_4x5", grid),
        ("weighted_ring", weighted),
    ]
}

fn golden_path(stem: &str) -> std::path::PathBuf {
    Path::new(GOLDEN_DIR).join(format!("{stem}.graph"))
}

#[test]
fn write_matches_golden_bytes() {
    for (stem, g) in golden_fixtures() {
        let expect = std::fs::read_to_string(golden_path(stem))
            .unwrap_or_else(|e| panic!("missing golden {stem}: {e} (run the regen test)"));
        assert_eq!(
            write_metis(&g),
            expect,
            "serialization of {stem} drifted from its golden file"
        );
    }
}

#[test]
fn goldens_read_back_to_identical_csr() {
    for (stem, g) in golden_fixtures() {
        let text = std::fs::read_to_string(golden_path(stem)).unwrap();
        let back = read_metis(&text).unwrap_or_else(|e| panic!("golden {stem} unreadable: {e}"));
        assert_eq!(back, g, "golden {stem} did not round-trip");
    }
}

#[test]
fn randomized_roundtrips() {
    for seed in 0..25u64 {
        let n = 2 + (seed as usize * 7) % 40;
        let g = common::random_connected_graph(n, n, seed);
        let text = write_metis(&g);
        let back = read_metis(&text).unwrap();
        assert_eq!(g, back, "round-trip failed for seed {seed}");
        // Serialization is a pure function of the graph.
        assert_eq!(text, write_metis(&back));
    }
}

#[test]
fn partition_file_roundtrip() {
    let g = generators::grid(6, 6);
    let part = common::bfs_slab_partitioning(&g, 4);
    let text = write_partition(&part);
    let back = read_partition(&text, &g, 4).unwrap();
    assert_eq!(back.assignment(), part.assignment());
}

#[test]
fn malformed_empty_input() {
    assert!(matches!(read_metis(""), Err(ParseError::BadHeader(_))));
    assert!(matches!(
        read_metis("% only a comment\n"),
        Err(ParseError::BadHeader(_))
    ));
}

#[test]
fn malformed_header() {
    // Too few tokens.
    assert!(matches!(read_metis("7\n"), Err(ParseError::BadHeader(_))));
    // Non-numeric counts.
    assert!(matches!(
        read_metis("x 3\n1\n2\n"),
        Err(ParseError::BadHeader(_))
    ));
    assert!(matches!(
        read_metis("3 y\n2\n1\n\n"),
        Err(ParseError::BadHeader(_))
    ));
    // Vertex sizes are unsupported.
    assert!(matches!(
        read_metis("2 1 100\n2\n1\n"),
        Err(ParseError::BadHeader(_))
    ));
    // Multi-constraint vertex weights are unsupported.
    assert!(matches!(
        read_metis("2 1 011 2\n1 2 1\n1 1 1\n"),
        Err(ParseError::BadHeader(_))
    ));
}

#[test]
fn malformed_vertex_lines() {
    // Garbage neighbor token.
    let err = read_metis("3 2\n2\n1 abc\n\n").unwrap_err();
    assert!(matches!(err, ParseError::BadLine { line: 3, .. }), "{err}");
    // Neighbor id out of range (vertices are 1-based; 0 and > n invalid).
    assert!(matches!(
        read_metis("3 2\n2\n1 0\n\n"),
        Err(ParseError::BadLine { .. })
    ));
    assert!(matches!(
        read_metis("3 2\n2\n1 4\n\n"),
        Err(ParseError::BadLine { .. })
    ));
    // Edge-weighted graph with a missing weight.
    assert!(matches!(
        read_metis("2 1 001\n2 5\n1\n"),
        Err(ParseError::BadLine { .. })
    ));
    // Vertex-weighted graph with a missing weight (empty line short-reads
    // as a missing vertex line instead).
    assert!(matches!(
        read_metis("2 1 010\n\n4 1\n"),
        Err(ParseError::BadLine { .. })
    ));
}

#[test]
fn inconsistent_counts() {
    // Header promises 3 vertices, 2 lines given.
    assert!(matches!(
        read_metis("3 1\n2\n1\n"),
        Err(ParseError::Inconsistent(_))
    ));
    // Header promises 2 edges, only 1 present.
    assert!(matches!(
        read_metis("3 2\n2\n1\n\n"),
        Err(ParseError::Inconsistent(_))
    ));
    // Header promises 0 edges, 1 present.
    assert!(matches!(
        read_metis("2 0\n2\n1\n"),
        Err(ParseError::Inconsistent(_))
    ));
}

#[test]
fn malformed_partition_files() {
    let g = generators::grid(2, 2);
    // Bad token.
    assert!(matches!(
        read_partition("0\n1\nx\n0\n", &g, 2),
        Err(ParseError::BadLine { .. })
    ));
    // Partition id out of range.
    assert!(matches!(
        read_partition("0\n1\n2\n0\n", &g, 2),
        Err(ParseError::BadLine { .. })
    ));
    // Wrong entry count.
    assert!(matches!(
        read_partition("0\n1\n0\n", &g, 2),
        Err(ParseError::Inconsistent(_))
    ));
}

/// Rewrites the golden files from the current writer. Run explicitly
/// after a *deliberate* format change, then review the diff.
#[test]
#[ignore]
fn regen_golden_files() {
    std::fs::create_dir_all(GOLDEN_DIR).unwrap();
    for (stem, g) in golden_fixtures() {
        std::fs::write(golden_path(stem), write_metis(&g)).unwrap();
    }
}
