//! End-to-end acceptance for the serving layer: the daemon serves
//! concurrent sessions over real TCP, each streaming deltas under a
//! cost-model-driven repartition policy, and every session's final
//! partition is **bit-identical** to a single-threaded replay of the
//! same delta stream through the session machinery.

mod common;

use igp::graph::{generators, CsrGraph, GraphDelta, PartId};
use igp::runtime::Backend;
use igp::service::client::{DeltaAck, IgpClient};
use igp::service::server::{serve, ServeOptions};
use igp::service::session::{Ingest, InitPartition, ServiceSession, SessionConfig};
use igp::service::RepartitionPolicy;

const SESSIONS: usize = 5;
const DELTAS: usize = 22;

/// Per-session scenario: base graph + config, deterministic per index.
fn scenario(i: usize) -> (CsrGraph, SessionConfig) {
    let base = match i % 3 {
        0 => generators::grid(9, 9),
        1 => generators::grid(8, 10),
        _ => common::random_connected_graph(70 + 10 * (i % 2), 90, 7 + i as u64),
    };
    let mut cfg = SessionConfig::new(4);
    cfg.policy = "cost".parse::<RepartitionPolicy>().unwrap();
    cfg.init = if i.is_multiple_of(2) {
        InitPartition::Rsb
    } else {
        InitPartition::RoundRobin
    };
    // One session exercises the SPMD parallel driver over the wire.
    if i == 2 {
        cfg.workers = 3;
        cfg.backend = Backend::SimCm5;
    }
    // One uses plain IGP instead of IGPR.
    cfg.refined = i != 3;
    (base, cfg)
}

/// The delta stream for one session, generated against the evolving
/// mirror exactly as the daemon's coalescer will see it.
fn delta_stream(base: &CsrGraph, i: usize) -> Vec<GraphDelta> {
    let mut mirror = base.clone();
    let mut deltas = Vec::with_capacity(DELTAS);
    for k in 0..DELTAS {
        let seed = (i as u64) << 40 | k as u64;
        let d = if k % 3 == 2 {
            generators::random_churn_delta(&mirror, 3, 2, seed)
        } else {
            generators::localized_growth_delta(&mirror, (k % 5) as u32, 3, seed)
        };
        mirror = d.apply(&mirror).new_graph().clone();
        deltas.push(d);
    }
    deltas
}

/// Single-threaded ground truth: the same graph, config and stream
/// through `ServiceSession` directly (no sockets, no threads).
fn replay(base: CsrGraph, cfg: SessionConfig, deltas: &[GraphDelta]) -> (Vec<PartId>, usize) {
    let mut s = ServiceSession::open(base, cfg);
    let mut steps = 0;
    for d in deltas {
        if let Ingest::Stepped { .. } = s.ingest(d).expect("replay ingest") {
            steps += 1;
        }
    }
    if s.flush().expect("replay flush").is_some() {
        steps += 1;
    }
    (s.assignment().to_vec(), steps)
}

#[test]
fn concurrent_sessions_match_single_threaded_replay() {
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            shards: 4,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Drive SESSIONS concurrent clients, each with its own connection
    // and tenant session.
    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            std::thread::spawn(move || {
                let (base, cfg) = scenario(i);
                let deltas = delta_stream(&base, i);
                let sid = format!("e2e-{i}");
                let mut cli = IgpClient::connect(addr).expect("connect");
                let ack = cli.open(&sid, &base, &cfg).expect("open");
                assert_eq!(ack.n, base.num_vertices());
                assert_eq!(ack.m, base.num_edges());
                let mut wire_steps = 0;
                let mut batched = false;
                for d in &deltas {
                    match cli.delta(&sid, d).expect("delta") {
                        DeltaAck::Queued { .. } => batched = true,
                        DeltaAck::Stepped(s) => {
                            wire_steps += 1;
                            assert!(s.coalesced >= 1);
                            if s.coalesced > 1 {
                                batched = true;
                            }
                        }
                    }
                }
                if cli.flush(&sid).expect("flush").is_some() {
                    wire_steps += 1;
                }
                let stat = cli.stat(&sid).expect("stat");
                assert_eq!(stat.pending, 0);
                assert_eq!(stat.steps, wire_steps);
                let assignment = cli.partition(&sid).expect("partition");
                assert_eq!(assignment.len(), stat.n);
                cli.close(&sid).expect("close");
                // The cost policy must actually have batched something
                // (otherwise this test degenerates to every:1).
                assert!(batched, "session {i}: cost policy never coalesced");
                (i, base, cfg, deltas, assignment, wire_steps)
            })
        })
        .collect();

    let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // After every close the registry is empty again.
    let mut cli = IgpClient::connect(addr).expect("connect");
    assert_eq!(cli.list().expect("list"), Vec::<String>::new());
    cli.shutdown().expect("shutdown");
    server.wait();

    // Bit-identical replay, session by session, single-threaded.
    for (i, base, cfg, deltas, wire_assignment, wire_steps) in results {
        let (replay_assignment, replay_steps) = replay(base, cfg, &deltas);
        assert_eq!(replay_steps, wire_steps, "session {i}: step count differs");
        assert_eq!(
            replay_assignment, wire_assignment,
            "session {i}: partition differs from single-threaded replay"
        );
    }
}

/// A malformed `OPEN` line must not desynchronize the connection: the
/// server drains the graph block through its `END` terminator, so the
/// next request on the same connection gets its own reply (regression
/// for the graph block being reinterpreted as request lines).
#[test]
fn malformed_open_drains_graph_block() {
    use std::io::{BufRead, BufReader, Write};

    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // sid contains `/` → parse error; the METIS block follows anyway,
    // exactly as a non-validating client would send it.
    let g = generators::grid(4, 4);
    let mut block = String::from("OPEN bad/sid parts=2\n");
    block.push_str(&igp::graph::io::write_metis(&g));
    block.push_str("END\nPING\n");
    stream.write_all(block.as_bytes()).expect("write");

    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR proto"), "got `{line}`");
    // The very next reply must answer the PING — not leftover graph
    // lines echoed back as unknown verbs.
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim(), "PONG");
    drop(stream);

    let mut cli = IgpClient::connect(server.addr()).expect("connect");
    cli.shutdown().expect("shutdown");
    server.wait();
}

/// One sample line's value from a Prometheus-style exposition; `series`
/// is the full series name including any label set.
fn metric_value(text: &str, series: &str) -> f64 {
    text.lines()
        .find_map(|l| {
            let rest = l.strip_prefix(series)?;
            rest.strip_prefix(' ')?.trim().parse::<f64>().ok()
        })
        .unwrap_or_else(|| panic!("series `{series}` missing from exposition:\n{text}"))
}

/// The `METRICS` verb serves a parseable exposition covering all four
/// instrumented layers, with live values reflecting the workload just
/// driven through the daemon, and `STAT` carries the per-session
/// repartition-latency subset once a step has happened.
///
/// The registry is process-global and the test binary runs tests
/// concurrently, so value assertions are lower bounds (≥), never
/// equality.
#[test]
fn metrics_exposition_covers_all_layers() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut cli = IgpClient::connect(server.addr()).expect("connect");

    let base = generators::grid(8, 8);
    let mut cfg = SessionConfig::new(4);
    cfg.init = InitPartition::RoundRobin;
    cfg.policy = "every:2".parse::<RepartitionPolicy>().unwrap();
    cli.open("obs", &base, &cfg).expect("open");
    const N_DELTAS: usize = 6;
    let mut mirror = base;
    let mut steps = 0usize;
    for k in 0..N_DELTAS {
        let d = generators::random_churn_delta(&mirror, 2, 1, 91 + k as u64);
        mirror = d.apply(&mirror).new_graph().clone();
        if let DeltaAck::Stepped(_) = cli.delta("obs", &d).expect("delta") {
            steps += 1;
        }
    }
    if cli.flush("obs").expect("flush").is_some() {
        steps += 1;
    }
    assert!(steps >= 1, "every:2 over {N_DELTAS} deltas must step");

    // Per-session subset on STAT: present once a repartition ran, and
    // internally consistent (quantiles are clamped to the max).
    let stat = cli.stat("obs").expect("stat");
    let p50 = stat.repart_p50_us.expect("repart_p50_us after steps");
    let p99 = stat.repart_p99_us.expect("repart_p99_us after steps");
    let max = stat.repart_max_us.expect("repart_max_us after steps");
    assert!(p50 <= p99 && p99 <= max, "p50={p50} p99={p99} max={max}");

    let text = cli.metrics().expect("metrics");

    // Grammar: every line is a `# HELP`/`# TYPE` comment or
    // `name[{labels}] value` with a numeric value.
    for line in text.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("unparseable exposition line `{line}`");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric value in `{line}`"
        );
        // `process_*` is the conventional Prometheus prefix for the
        // process-level families (start time / uptime); everything
        // else is namespaced under `igp_`.
        assert!(
            (series.starts_with("igp_") || series.starts_with("process_"))
                && series.matches('{').count() == series.matches('}').count(),
            "malformed series name in `{line}`"
        );
    }

    // Every layer's families render — the daemon touches each layer's
    // metric struct at boot, so these exist even where still zero.
    for family in [
        "igp_service_requests_total",
        "igp_service_request_us",
        "igp_service_errors_total",
        "igp_service_repartitions_total",
        "igp_service_queue_depth",
        "igp_service_backpressure_total",
        "igp_service_active_sessions",
        "igp_service_bytes_in_total",
        "igp_service_bytes_out_total",
        "igp_core_repartition_us",
        "igp_core_repartitions_total",
        "igp_core_pivots_total",
        "igp_core_edge_cut_before",
        "igp_core_edge_cut_after",
        "igp_core_coalesced_batch_deltas",
        "igp_store_wal_append_us",
        "igp_store_wal_frames_total",
        "igp_store_snapshot_us",
        "igp_store_recovery_us",
        "igp_store_recovery_truncations_total",
        "igp_runtime_launches_total",
        "igp_runtime_barrier_wait_us",
        "igp_runtime_collective_us",
        "igp_runtime_sim_makespan_us",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "family `{family}` missing from exposition:\n{text}"
        );
    }

    // Live values for the workload just driven (lower bounds).
    assert!(metric_value(&text, "igp_service_requests_total{verb=\"open\"}") >= 1.0);
    assert!(metric_value(&text, "igp_service_requests_total{verb=\"delta\"}") >= N_DELTAS as f64);
    assert!(metric_value(&text, "igp_service_requests_total{verb=\"metrics\"}") >= 1.0);
    assert!(metric_value(&text, "igp_service_request_us_count{verb=\"delta\"}") >= N_DELTAS as f64);
    assert!(metric_value(&text, "igp_service_bytes_in_total") >= 1.0);
    assert!(metric_value(&text, "igp_service_bytes_out_total") >= 1.0);
    // This session's sessions run the sequential driver (workers = 1).
    let seq = "igp_core_repartitions_total{driver=\"sequential\"}";
    assert!(metric_value(&text, seq) >= steps as f64);
    let seq_us = "igp_core_repartition_us_count{driver=\"sequential\"}";
    assert!(metric_value(&text, seq_us) >= steps as f64);
    assert!(metric_value(&text, "igp_core_coalesced_batch_deltas_count") >= steps as f64);
    // Present with a sane (non-negative) value; may legitimately be 0.
    assert!(metric_value(&text, "igp_core_pivots_total") >= 0.0);

    cli.close("obs").expect("close");
    cli.shutdown().expect("shutdown");
    server.wait();
}

/// Protocol-level error paths stay typed end to end: malformed deltas
/// are rejected at the boundary without killing the session or the
/// connection.
#[test]
fn boundary_errors_are_reported_not_fatal() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut cli = IgpClient::connect(server.addr()).expect("connect");

    let base = generators::grid(6, 6);
    let mut cfg = SessionConfig::new(2);
    cfg.init = InitPartition::RoundRobin;
    cli.open("s", &base, &cfg).expect("open");

    // Unknown session.
    let err = cli.stat("ghost").unwrap_err();
    assert!(matches!(
        err,
        igp::service::ClientError::Server { ref kind, .. } if kind == "unknown-session"
    ));
    // Duplicate open.
    let err = cli.open("s", &base, &cfg).unwrap_err();
    assert!(matches!(
        err,
        igp::service::ClientError::Server { ref kind, .. } if kind == "session-exists"
    ));
    // Malformed delta (vertex out of range) → typed boundary rejection.
    let bad = GraphDelta {
        remove_vertices: vec![9999],
        ..Default::default()
    };
    let err = cli.delta("s", &bad).unwrap_err();
    assert!(matches!(
        err,
        igp::service::ClientError::Server { ref kind, .. } if kind == "delta"
    ));
    // A structurally fine delta lying about base-edge existence (edge
    // {0,5} is not in a 6-wide grid row) — regression: this used to
    // pass the boundary and panic at flush, poisoning the session.
    let lying = GraphDelta {
        remove_edges: vec![(0, 5)],
        ..Default::default()
    };
    let err = cli.delta("s", &lying).unwrap_err();
    assert!(matches!(
        err,
        igp::service::ClientError::Server { ref kind, .. } if kind == "delta"
    ));
    // The session still works afterwards.
    let d = generators::localized_growth_delta(&base, 0, 3, 1);
    assert!(matches!(
        cli.delta("s", &d).expect("valid delta after rejected one"),
        DeltaAck::Stepped(_)
    ));
    cli.close("s").expect("close");
    cli.shutdown().expect("shutdown");
    server.wait();
}
