//! Ops-plane end-to-end tests (DESIGN.md §14): the HTTP exposition
//! listener riding the event loop, the liveness watchdogs behind
//! `/healthz`, and readiness semantics across draining and replication.
//!
//! The stall drills use the `STALL` fault-injection verb (gated behind
//! `--debug-stall`) to freeze the event loop or a pool worker for real
//! — the watchdog must flip `/healthz` to 503 *while the stall is
//! still in progress* (worker case) or hold the verdict long enough
//! for the resumed loop itself to report it (loop case), then recover.

use igp::service::client::{http_get, IgpClient};
use igp::service::server::{serve, ServeOptions, ServerHandle};
use igp::service::session::{InitPartition, SessionConfig};
use igp::service::SnapshotPolicy;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const GET_TIMEOUT: Duration = Duration::from_secs(10);

fn http_opts() -> ServeOptions {
    ServeOptions {
        http: Some("127.0.0.1:0".into()),
        ..Default::default()
    }
}

fn get(server: &ServerHandle, path: &str) -> (u16, String) {
    let addr = server.http_addr().expect("ops listener bound");
    http_get(addr, path, GET_TIMEOUT).expect("GET")
}

/// Poll until `f` returns true; panics with `what` after 15s.
fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for: {what}");
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("igp-http-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drive a little traffic so every serving-path metric family has
/// nonzero samples behind it.
fn traffic(server: &ServerHandle) {
    let mut cli = IgpClient::connect(server.addr()).expect("connect");
    let g = igp::graph::generators::grid(6, 6);
    let mut cfg = SessionConfig::new(2);
    cfg.init = InitPartition::RoundRobin;
    cfg.policy = "every:1".parse().unwrap();
    cli.open("ops", &g, &cfg).expect("open");
    let d = igp::graph::generators::random_churn_delta(&g, 2, 1, 7);
    cli.delta("ops", &d).expect("delta");
    cli.flush("ops").expect("flush");
}

// -- exposition-format conformance --------------------------------------

/// Scan a `{...}` label block (braces included): returns Err unless it
/// is a comma-separated list of `name="value"` pairs with `\"`/`\\`
/// escapes — the exposition grammar the registry promises (§10.2).
fn check_label_block(block: &str) -> Result<(), String> {
    let inner = &block[1..block.len() - 1];
    let b = inner.as_bytes();
    let mut i = 0;
    loop {
        let start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if i == start {
            return Err(format!("empty label name in `{block}`"));
        }
        if i >= b.len() || b[i] != b'=' {
            return Err(format!("label without `=` in `{block}`"));
        }
        i += 1;
        if i >= b.len() || b[i] != b'"' {
            return Err(format!("unquoted label value in `{block}`"));
        }
        i += 1;
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'"' => break,
                _ => i += 1,
            }
        }
        if i >= b.len() {
            return Err(format!("unterminated label value in `{block}`"));
        }
        i += 1; // past the closing quote
        if i == b.len() {
            return Ok(());
        }
        if b[i] != b',' {
            return Err(format!("junk after label value in `{block}`"));
        }
        i += 1;
    }
}

/// Split `name{labels} value` → (name, label block or "", value text),
/// honouring quotes inside the label block.
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| format!("no name/value split in `{line}`"))?;
    let name = &line[..name_end];
    let rest = &line[name_end..];
    if !rest.starts_with('{') {
        return Ok((name, "", rest.trim_start()));
    }
    let b = rest.as_bytes();
    let (mut i, mut in_str, mut esc) = (1, false, false);
    while i < b.len() {
        match b[i] {
            _ if esc => esc = false,
            b'\\' if in_str => esc = true,
            b'"' => in_str = !in_str,
            b'}' if !in_str => {
                return Ok((name, &rest[..=i], rest[i + 1..].trim_start()));
            }
            _ => {}
        }
        i += 1;
    }
    Err(format!("unclosed label block in `{line}`"))
}

fn metric_name_ok(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Structurally validate a whole exposition: every family opens with
/// `# HELP` + `# TYPE` (in that order, once), samples follow their own
/// family's header block (no interleaving), names/labels/values parse,
/// and no (name, labels) series repeats.
fn assert_exposition_conforms(text: &str) -> Vec<String> {
    let mut families: Vec<String> = Vec::new();
    let mut pending_help: Option<String> = None;
    let mut current: Option<(String, String)> = None; // (family, type)
    let mut series_seen: HashSet<String> = HashSet::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            assert!(metric_name_ok(name), "bad family name in `{line}`");
            assert!(
                !families.contains(&name.to_string()),
                "family `{name}` appears twice"
            );
            assert!(pending_help.is_none(), "HELP `{name}` after dangling HELP");
            families.push(name.to_string());
            pending_help = Some(name.to_string());
            current = None;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let (name, ty) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            assert_eq!(
                pending_help.take().as_deref(),
                Some(name),
                "TYPE not immediately after its HELP: `{line}`"
            );
            assert!(
                ["counter", "gauge", "summary", "histogram", "untyped"].contains(&ty),
                "unknown type in `{line}`"
            );
            current = Some((name.to_string(), ty.to_string()));
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment `{line}`");
        let (family, ty) = current
            .as_ref()
            .unwrap_or_else(|| panic!("sample before any TYPE header: `{line}`"));
        let (name, labels, value) =
            split_sample(line).unwrap_or_else(|e| panic!("{e} (family `{family}`)"));
        assert!(metric_name_ok(name), "bad sample name in `{line}`");
        let suffix_ok = ty == "summary"
            && ["_max", "_count", "_sum"]
                .iter()
                .any(|s| name == format!("{family}{s}"));
        assert!(
            name == family || suffix_ok,
            "sample `{name}` under family `{family}` (type {ty})"
        );
        if !labels.is_empty() {
            check_label_block(labels).unwrap_or_else(|e| panic!("{e}"));
        }
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in `{line}`"
        );
        assert!(
            series_seen.insert(format!("{name}{labels}")),
            "duplicate series `{name}{labels}`"
        );
    }
    assert!(pending_help.is_none(), "HELP with no TYPE at end");
    families
}

/// `GET /metrics` under live traffic is a conformant exposition and
/// carries the ops-plane families: per-path HTTP counters, process
/// start/uptime gauges and the constant `igp_build_info` series.
#[test]
fn metrics_endpoint_is_a_conformant_exposition() {
    let server = serve("127.0.0.1:0", http_opts()).expect("bind");
    traffic(&server);
    // One throwaway scrape so http_requests_total{path="metrics"} is
    // provably nonzero in the second one.
    let (code, _) = get(&server, "/metrics");
    assert_eq!(code, 200);
    let (code, body) = get(&server, "/metrics");
    assert_eq!(code, 200);

    let families = assert_exposition_conforms(&body);
    assert!(families.len() >= 10, "only {} families", families.len());
    for want in [
        "igp_service_requests_total",
        "igp_service_http_requests_total",
        "igp_service_active_sessions",
        "igp_service_repl_lag_ms",
        "igp_service_repl_heartbeat_age_ms",
        "process_start_time_seconds",
        "process_uptime_seconds",
        "igp_build_info",
    ] {
        assert!(families.iter().any(|f| f == want), "missing family {want}");
    }
    assert!(
        body.contains("igp_build_info{") && body.contains("version=\""),
        "build info must carry its labels:\n{body}"
    );
    let scraped = body
        .lines()
        .find(|l| l.starts_with("igp_service_http_requests_total{path=\"metrics\"}"))
        .expect("per-path scrape counter");
    let n: i64 = scraped.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(n >= 1, "scrape counter not counting: {scraped}");

    // STAT rides along: the wire now reports daemon uptime.
    let mut cli = IgpClient::connect(server.addr()).expect("connect");
    let stat = cli.stat("ops").expect("stat");
    assert!(stat.uptime_s.is_some(), "STAT must report uptime_s");
}

/// The rest of the surface: index, health, readiness, session table,
/// traces, unknown paths, non-GET methods, and an oversized request
/// head (slowloris-by-header) that must be cut off without a reply.
#[test]
fn ops_endpoints_index_health_sessions_traces_and_errors() {
    let server = serve("127.0.0.1:0", http_opts()).expect("bind");
    traffic(&server);

    let (code, body) = get(&server, "/");
    assert_eq!(code, 200);
    assert!(
        body.contains("/metrics") && body.contains("/healthz"),
        "{body}"
    );

    let (code, body) = get(&server, "/healthz");
    assert_eq!(code, 200, "healthy daemon: {body}");
    assert!(body.starts_with("status ok\n"), "{body}");
    for component in ["loop ok", "worker-0 ok", "store "] {
        assert!(body.contains(component), "missing `{component}`:\n{body}");
    }

    let (code, body) = get(&server, "/readyz");
    assert_eq!(code, 200, "{body}");
    assert!(body.starts_with("ready 1\n"), "{body}");

    let (code, body) = get(&server, "/sessions");
    assert_eq!(code, 200);
    assert!(body.contains("role primary"), "{body}");
    assert!(body.contains("sessions 1"), "{body}");
    assert!(body.contains("ops "), "session row missing:\n{body}");

    let (code, body) = get(&server, "/traces?n=4");
    assert_eq!(code, 200);
    assert!(body.contains("trace "), "flight recorder empty:\n{body}");

    let (code, _) = get(&server, "/no-such-path");
    assert_eq!(code, 404);

    // Non-GET: 405, and the daemon survives.
    let http = server.http_addr().unwrap();
    let mut raw = TcpStream::connect(http).expect("connect");
    raw.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.0 405 "), "{reply}");

    // A head that never terminates within the cap: closed, no reply.
    let mut raw = TcpStream::connect(http).expect("connect");
    raw.set_read_timeout(Some(GET_TIMEOUT)).unwrap();
    let junk = format!(
        "GET /metrics HTTP/1.0\r\nX-Pad: {}\r\n",
        "a".repeat(16 * 1024)
    );
    raw.write_all(junk.as_bytes()).unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).expect("read");
    assert!(buf.is_empty(), "oversized head must be dropped unreplied");

    let (code, _) = get(&server, "/healthz");
    assert_eq!(code, 200, "daemon must shrug off the abuse");
}

/// `STALL` is a fault-injection verb; without `--debug-stall` it must
/// be refused like any other protocol error.
#[test]
fn stall_verb_is_gated_behind_debug_flag() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    conn.write_all(b"STALL LOOP 5\nPING\n").expect("write");
    let mut r = BufReader::new(&mut conn);
    let mut line = String::new();
    r.read_line(&mut line).expect("reply");
    assert!(
        line.starts_with("ERR proto") && line.contains("--debug-stall"),
        "{line}"
    );
    line.clear();
    r.read_line(&mut line).expect("reply");
    assert_eq!(line.trim_end(), "PONG");
}

/// Freeze the event loop itself. The loop can't answer `/healthz`
/// *during* its own stall — that is exactly why a finished stall holds
/// the verdict degraded — so a GET queued behind the stall must come
/// back 503 once the loop resumes, and the verdict must clear after
/// the hold expires.
#[test]
fn loop_stall_flips_healthz_to_degraded_and_recovers() {
    let opts = ServeOptions {
        loop_stall: Duration::from_millis(100),
        debug_stall: true,
        ..http_opts()
    };
    let server = serve("127.0.0.1:0", opts).expect("bind");
    let http = server.http_addr().unwrap();

    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    conn.write_all(b"STALL LOOP 900\n").expect("write");
    // Let the loop actually enter the stall before probing, so the
    // probe is queued behind it rather than racing it.
    std::thread::sleep(Duration::from_millis(150));
    let (code, body) = http_get(http, "/healthz", GET_TIMEOUT).expect("GET");
    assert_eq!(code, 503, "stall not observed:\n{body}");
    assert!(
        body.contains("loop degraded") || body.contains("loop unhealthy"),
        "wrong component blamed:\n{body}"
    );
    let mut r = BufReader::new(&mut conn);
    let mut line = String::new();
    r.read_line(&mut line).expect("reply");
    assert!(line.starts_with("OK stalled target=loop"), "{line}");

    wait_until("loop verdict to clear", || {
        matches!(http_get(http, "/healthz", GET_TIMEOUT), Ok((200, _)))
    });
}

/// Freeze a pool worker. The loop stays live, so `/healthz` must flip
/// to 503 while the worker is *still wedged* — within the watchdog
/// bar, not after the job ends — and recover once the hold expires.
#[test]
fn worker_stall_flips_healthz_within_the_bar_and_recovers() {
    let opts = ServeOptions {
        workers: 1,
        worker_stall: Duration::from_millis(150),
        debug_stall: true,
        ..http_opts()
    };
    let server = serve("127.0.0.1:0", opts).expect("bind");
    let http = server.http_addr().unwrap();
    let (code, _) = get(&server, "/healthz");
    assert_eq!(code, 200);

    let stall_ms = 2_000u64;
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    conn.write_all(format!("STALL WORKER {stall_ms}\n").as_bytes())
        .expect("write");
    let started = Instant::now();
    let mut flipped_at = None;
    while started.elapsed() < Duration::from_millis(stall_ms) {
        let (code, body) = http_get(http, "/healthz", GET_TIMEOUT).expect("GET");
        if code == 503 {
            assert!(
                body.contains("worker-0 degraded") || body.contains("worker-0 unhealthy"),
                "wrong component blamed:\n{body}"
            );
            flipped_at = Some(started.elapsed());
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let flipped_at = flipped_at.expect("/healthz never flipped during a wedged worker");
    assert!(
        flipped_at < Duration::from_millis(stall_ms),
        "flip observed only after the stall ended ({flipped_at:?})"
    );

    let mut r = BufReader::new(&mut conn);
    let mut line = String::new();
    r.read_line(&mut line).expect("reply");
    assert!(line.starts_with("OK stalled target=worker"), "{line}");
    wait_until("worker verdict to clear", || {
        matches!(http_get(http, "/healthz", GET_TIMEOUT), Ok((200, _)))
    });
}

/// Readiness is stricter than liveness for a follower: while its
/// primary is reachable it is ready, and once the primary dies its
/// replication freshness lapses and `/readyz` must flip to 503 — the
/// load-balancer signal to stop routing reads at a stale replica.
#[test]
fn follower_readyz_tracks_primary_reachability() {
    let dir_a = scratch_dir("ready-primary");
    let dir_b = scratch_dir("ready-follower");
    let primary = serve(
        "127.0.0.1:0",
        ServeOptions {
            data_dir: Some(dir_a.clone()),
            snapshot_policy: SnapshotPolicy::EveryK(4),
            ..Default::default()
        },
    )
    .expect("bind primary");
    traffic(&primary);

    let follower = serve(
        "127.0.0.1:0",
        ServeOptions {
            data_dir: Some(dir_b.clone()),
            snapshot_policy: SnapshotPolicy::EveryK(4),
            follow: Some(primary.addr().to_string()),
            repl_interval: Duration::from_millis(15),
            ..http_opts()
        },
    )
    .expect("bind follower");
    let http = follower.http_addr().unwrap();

    wait_until("follower to become ready", || {
        matches!(http_get(http, "/readyz", GET_TIMEOUT), Ok((200, _)))
    });

    // The follower's STAT surfaces the replication gauges.
    let mut cli = IgpClient::connect(follower.addr()).expect("connect follower");
    let stat = cli.stat("ops").expect("follower stat");
    assert_eq!(stat.role.as_deref(), Some("follower"));
    assert!(stat.repl_lag_ms.is_some(), "STAT must report repl_lag_ms");
    assert!(
        stat.repl_heartbeat_age_ms.is_some(),
        "STAT must report repl_heartbeat_age_ms"
    );

    // Kill the primary: heartbeats lapse, readiness must go.
    drop(primary);
    wait_until("follower to report not-ready", || {
        match http_get(http, "/readyz", GET_TIMEOUT) {
            Ok((code, body)) => code == 503 && body.contains("repl"),
            Err(_) => false,
        }
    });
    // …while the follower itself still answers (liveness ≠ readiness).
    let (_, body) = http_get(http, "/readyz", GET_TIMEOUT).expect("GET");
    assert!(body.starts_with("ready 0\n"), "{body}");

    // Promotion retires the replication heartbeat: the new primary
    // must become ready again, not stay wedged on a silent tick.
    assert!(cli.promote().expect("promote"), "was a follower");
    wait_until("promoted daemon to become ready", || {
        matches!(http_get(http, "/readyz", GET_TIMEOUT), Ok((200, _)))
    });
    let (code, body) = http_get(http, "/healthz", GET_TIMEOUT).expect("GET");
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("repl ok retired=1"), "{body}");

    drop(follower);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
