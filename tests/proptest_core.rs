//! Property tests on the incremental partitioner itself: the DESIGN.md §7
//! invariants under randomized graphs, partitions and increments.

mod common;

use igp::graph::metrics::CutMetrics;
use igp::graph::{generators, CsrGraph, PartId, Partitioning};
use igp::layer::layer_partitions;
use igp::{CapPolicy, IgpConfig, IncrementalPartitioner};
use proptest::prelude::*;

/// Connected random graph + a partitioning built from BFS-ish slabs so it
/// starts roughly (not exactly) balanced.
fn scenario_strategy() -> impl Strategy<Value = (CsrGraph, Partitioning, u64)> {
    (12usize..60, 2usize..5, any::<u64>()).prop_map(|(n, parts, seed)| {
        let g = common::random_connected_graph(n, 2 * n, seed);
        let part = common::bfs_slab_partitioning(&g, parts);
        (g, part, seed)
    })
}

proptest! {
    #![proptest_config(common::tier1_config(48))]

    /// After IGP: every vertex assigned, totals preserved, counts within
    /// one of the averages, and (strict caps) at most slight deformation.
    #[test]
    fn igp_invariants((g, old, seed) in scenario_strategy()) {
        let delta = generators::localized_growth_delta(&g, 0, 6, seed);
        let inc = delta.apply(&g);
        let parts = old.num_parts();
        let (part, report) = IncrementalPartitioner::igp(IgpConfig::new(parts))
            .repartition(&inc, &old);
        let n_new = inc.new_graph().num_vertices();
        prop_assert_eq!(part.num_vertices(), n_new);
        prop_assert_eq!(part.counts().iter().sum::<u32>() as usize, n_new);
        if report.balance.balanced {
            let max = *part.counts().iter().max().unwrap() as i64;
            let min = *part.counts().iter().min().unwrap() as i64;
            prop_assert!(max - min <= 1, "{:?}", part.counts());
        }
        part.validate(inc.new_graph()).unwrap();
    }

    /// Refinement (IGPR vs IGP) never increases the cut and never changes
    /// partition sizes.
    #[test]
    fn igpr_refines_without_unbalancing((g, old, seed) in scenario_strategy()) {
        let delta = generators::localized_growth_delta(&g, 0, 5, seed);
        let inc = delta.apply(&g);
        let parts = old.num_parts();
        let (p1, r1) = IncrementalPartitioner::igp(IgpConfig::new(parts))
            .repartition(&inc, &old);
        let (p2, r2) = IncrementalPartitioner::igpr(IgpConfig::new(parts))
            .repartition(&inc, &old);
        prop_assert_eq!(p1.counts(), p2.counts());
        prop_assert!(r2.metrics.total_cut_edges <= r1.metrics.total_cut_edges,
            "IGPR {} > IGP {}", r2.metrics.total_cut_edges, r1.metrics.total_cut_edges);
        // Refinement iterations individually monotone.
        if let Some(rf) = &r2.refine {
            for it in &rf.iters {
                prop_assert!(it.cut_after <= it.cut_before);
            }
        }
    }

    /// Layering invariants: every vertex of a connected partition with a
    /// boundary gets tagged; level-0 = boundary; λ row sums count tagged
    /// vertices; tags always foreign.
    #[test]
    fn layering_invariants((g, part, _) in scenario_strategy()) {
        let parts = part.num_parts();
        let lay = layer_partitions(&g, part.assignment(), parts);
        for v in g.vertices() {
            let i = part.part_of(v);
            let t = lay.tag[v as usize];
            if t != igp::graph::NO_PART {
                prop_assert_ne!(t, i, "tag must be foreign");
            }
            let boundary = part.is_boundary(&g, v);
            prop_assert_eq!(lay.level[v as usize] == 0, boundary);
        }
        let tagged = lay.tag.iter().filter(|&&t| t != igp::graph::NO_PART).count() as u64;
        let lambda_sum: u64 = (0..parts).flat_map(|i| (0..parts).map(move |j| (i, j)))
            .map(|(i, j)| lay.lambda(i as PartId, j as PartId)).sum();
        prop_assert_eq!(lambda_sum, tagged);
    }

    /// Relaxed caps always balance in few stages; strict caps, when they
    /// report balanced, agree with the targets.
    #[test]
    fn cap_policies_balance((g, old, seed) in scenario_strategy()) {
        let delta = generators::localized_growth_delta(&g, 0, 8, seed);
        let inc = delta.apply(&g);
        let parts = old.num_parts();
        for policy in [CapPolicy::Strict, CapPolicy::Relaxed] {
            let mut cfg = IgpConfig::new(parts);
            cfg.cap_policy = policy;
            let (part, report) = IncrementalPartitioner::igp(cfg).repartition(&inc, &old);
            if report.balance.balanced {
                let max = *part.counts().iter().max().unwrap() as i64;
                let min = *part.counts().iter().min().unwrap() as i64;
                prop_assert!(max - min <= 1, "{policy:?}: {:?}", part.counts());
            }
        }
    }

    /// Determinism: repeated runs produce identical assignments.
    #[test]
    fn igp_deterministic((g, old, seed) in scenario_strategy()) {
        let delta = generators::localized_growth_delta(&g, 0, 4, seed);
        let inc = delta.apply(&g);
        let igp = IncrementalPartitioner::igpr(IgpConfig::new(old.num_parts()));
        let (a, _) = igp.repartition(&inc, &old);
        let (b, _) = igp.repartition(&inc, &old);
        prop_assert_eq!(a.assignment(), b.assignment());
    }

    /// Quality sanity: the final machine cost is bounded by the trivial
    /// upper bound (every edge cut).
    #[test]
    fn metrics_bounded((g, old, seed) in scenario_strategy()) {
        let delta = generators::localized_growth_delta(&g, 0, 4, seed);
        let inc = delta.apply(&g);
        let (part, _) = IncrementalPartitioner::igpr(IgpConfig::new(old.num_parts()))
            .repartition(&inc, &old);
        let m = CutMetrics::compute(inc.new_graph(), &part);
        prop_assert!(m.total_cut_edges <= inc.new_graph().num_edges() as u64);
        prop_assert!(m.sum_boundary() == 2 * m.total_cut_weight);
    }
}
