//! Cross-backend equivalence suite: the SPMD driver generic over
//! [`igp::runtime::Executor`] must behave identically on the simulated
//! CM-5 machine and the shared-memory backend, and the `SimCm5` path must
//! reproduce the pre-refactor charged-cost numbers exactly.
//!
//! Three layers of guarantee, strongest first:
//!
//! 1. **SimCm5 ≡ SharedMem, always**: collectives are rank-order
//!    deterministic on both substrates, so every scenario in the matrix
//!    yields bit-identical partitions, identical pivot counts and
//!    identical moved/stage accounting at every worker count.
//! 2. **Sequential ≡ parallel on pinned scenarios**: the sequential
//!    driver interleaves gain recomputation with draining, so it only
//!    matches the parallel drivers bit-for-bit where no such tie-break
//!    divergence is exercised; those scenarios are pinned here.
//! 3. **SimCm5 golden reports**: the exact makespan / message / word /
//!    work numbers captured from the pre-`Executor` runtime (seed commit
//!    4433ac4) — the refactor must not drift the simulated CM-5 clock by
//!    one bit.

mod common;

use igp::graph::{generators, CsrGraph, GraphDelta, IncrementalGraph, PartId, Partitioning};
use igp::parallel::{ParallelPartitioner, ParallelRunReport};
use igp::runtime::{Backend, CostModel};
use igp::{IgpConfig, IncrementalPartitioner};

/// FNV-1a over the assignment vector: a compact partition fingerprint.
fn assignment_hash(part: &Partitioning) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &q in part.assignment() {
        h ^= q as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The 8×8-grid growth scenario used by the driver unit tests and the
/// golden capture.
fn grid_scenario(
    n: usize,
    parts: usize,
    grow: usize,
    seed: u64,
) -> (Partitioning, IncrementalGraph) {
    let g = generators::grid(n, n);
    let band = (n / parts).max(1);
    let assign: Vec<PartId> = (0..n * n)
        .map(|v| (((v % n) / band).min(parts - 1)) as PartId)
        .collect();
    let old = Partitioning::from_assignment(&g, parts, assign);
    let delta = generators::localized_growth_delta(&g, (n - 1) as u32, grow, seed);
    let inc = delta.apply(&g);
    (old, inc)
}

/// An irregular scenario from the shared fixtures: random connected
/// graph, BFS-slab partitioning, growth hanging off a random survivor.
fn random_scenario(
    n: usize,
    extra: usize,
    parts: usize,
    grow: usize,
    seed: u64,
) -> (Partitioning, IncrementalGraph) {
    let g = common::random_connected_graph(n, extra, seed);
    let old = common::bfs_slab_partitioning(&g, parts);
    let mut rng = common::Lcg::new(seed ^ 0xabcd);
    let anchor = rng.below(n) as u32;
    let delta = generators::localized_growth_delta(&g, anchor, grow, seed.wrapping_add(1));
    let inc = delta.apply(&g);
    (old, inc)
}

fn run_backend(
    backend: Backend,
    old: &Partitioning,
    inc: &IncrementalGraph,
    parts: usize,
    workers: usize,
    refine: bool,
) -> (Partitioning, ParallelRunReport) {
    let cfg = IgpConfig::new(parts).with_backend(backend);
    let pp = ParallelPartitioner::new(cfg, workers, refine, CostModel::cm5());
    pp.repartition(inc, old)
}

#[test]
fn backends_bit_identical_on_scenario_matrix() {
    let scenarios: Vec<(&str, Partitioning, IncrementalGraph, usize)> = vec![
        {
            let (old, inc) = grid_scenario(8, 4, 20, 123);
            ("grid-8x8-p4", old, inc, 4)
        },
        {
            let (old, inc) = grid_scenario(10, 5, 30, 99);
            ("grid-10x10-p5", old, inc, 5)
        },
        {
            let (old, inc) = grid_scenario(12, 3, 40, 11);
            ("grid-12x12-p3", old, inc, 3)
        },
        {
            let (old, inc) = random_scenario(90, 60, 4, 25, 0x5eed);
            ("random-90-p4", old, inc, 4)
        },
        {
            let (old, inc) = random_scenario(120, 80, 6, 35, 77);
            ("random-120-p6", old, inc, 6)
        },
    ];
    // The matrix legs are independent — fan the scenarios out across
    // cores (the vendored rayon stub chunks the index space; assertion
    // panics propagate through the worker join).
    use rayon::prelude::*;
    scenarios.par_iter().for_each(|(label, old, inc, parts)| {
        for workers in [1usize, 2, 3, 4] {
            for refine in [false, true] {
                let (sim_part, sim_rep) =
                    run_backend(Backend::SimCm5, old, inc, *parts, workers, refine);
                let (shm_part, shm_rep) =
                    run_backend(Backend::SharedMem, old, inc, *parts, workers, refine);
                let tag = format!("{label} w={workers} refine={refine}");
                assert_eq!(
                    sim_part.assignment(),
                    shm_part.assignment(),
                    "partitions diverged: {tag}"
                );
                assert_eq!(
                    sim_rep.total_pivots, shm_rep.total_pivots,
                    "pivot counts diverged: {tag}"
                );
                assert_eq!(sim_rep.total_moved, shm_rep.total_moved, "{tag}");
                assert_eq!(sim_rep.stages, shm_rep.stages, "{tag}");
                assert_eq!(sim_rep.balanced, shm_rep.balanced, "{tag}");
                assert_eq!(sim_rep.backend, Backend::SimCm5);
                assert_eq!(shm_rep.backend, Backend::SharedMem);
                // SharedMem must charge the same total work it would have
                // simulated (the ownership split is substrate-independent).
                assert_eq!(sim_rep.sim.total_work, shm_rep.sim.total_work, "{tag}");
                // SharedMem serializes nothing.
                assert_eq!(shm_rep.sim.total_messages, 0, "{tag}");
                common::assert_partition_invariants(inc.new_graph(), &shm_part);
            }
        }
    });
}

#[test]
fn sequential_matches_parallel_on_pinned_scenarios() {
    // Scenarios with no drain-order tie-break divergence: the sequential
    // driver and both parallel backends agree bit-for-bit, including the
    // simplex pivot trace of the balance phase.
    for (n, parts, grow, seed) in [(8usize, 4usize, 20usize, 123u64), (12, 3, 40, 11)] {
        let (old, inc) = grid_scenario(n, parts, grow, seed);
        let seq = IncrementalPartitioner::igp(IgpConfig::new(parts));
        let (seq_part, seq_rep) = seq.repartition(&inc, &old);
        let seq_pivots: u64 = seq_rep
            .balance
            .stages
            .iter()
            .map(|s| s.lp.pivots as u64)
            .sum();
        for backend in Backend::ALL {
            let (par_part, par_rep) = run_backend(backend, &old, &inc, parts, 3, false);
            let tag = format!("grid-{n} p={parts} {backend}");
            assert_eq!(
                seq_part.assignment(),
                par_part.assignment(),
                "sequential vs parallel partition: {tag}"
            );
            assert_eq!(
                seq_pivots, par_rep.total_pivots,
                "sequential vs parallel pivots: {tag}"
            );
            assert_eq!(seq_rep.total_moved(), par_rep.total_moved, "{tag}");
        }
    }
}

#[test]
fn sequential_objectives_match_on_divergent_scenarios() {
    // Where tie-breaks do diverge, the *objectives* still agree: same
    // partition sizes, same optimal movement total, both balanced.
    let (old, inc) = grid_scenario(10, 5, 30, 99);
    let seq = IncrementalPartitioner::igp(IgpConfig::new(5));
    let (seq_part, seq_rep) = seq.repartition(&inc, &old);
    for backend in Backend::ALL {
        let (par_part, par_rep) = run_backend(backend, &old, &inc, 5, 4, false);
        assert_eq!(seq_part.counts(), par_part.counts(), "{backend}");
        assert_eq!(
            seq_rep.balance.total_moved, par_rep.total_moved,
            "{backend}"
        );
        assert!(par_rep.balanced, "{backend}");
    }
}

/// Golden SimCm5 numbers captured from the pre-`Executor` runtime on the
/// canonical grid scenario. The refactor routes every charge through the
/// trait, so any drift here means the CM-5 simulation changed behaviour
/// and E1–E3 reproduction can no longer be trusted.
// 17-significant-digit literals: these round-trip the captured f64s
// exactly; the pins are bitwise, not approximate.
#[allow(clippy::excessive_precision)]
#[test]
fn sim_cm5_reports_unchanged_since_seed() {
    struct Golden {
        workers: usize,
        refine: bool,
        makespan: f64,
        messages: u64,
        words: u64,
        work: u64,
        moved: u64,
        stages: usize,
        hash: u64,
    }
    let goldens = [
        Golden {
            workers: 1,
            refine: false,
            makespan: 1.28969999999999888e-3,
            messages: 0,
            words: 0,
            work: 4299,
            moved: 4,
            stages: 1,
            hash: 14084949599647279875,
        },
        Golden {
            workers: 1,
            refine: true,
            makespan: 2.95559999999994282e-3,
            messages: 0,
            words: 0,
            work: 9852,
            moved: 6,
            stages: 1,
            hash: 2910191017051003751,
        },
        Golden {
            workers: 2,
            refine: false,
            makespan: 8.52399999999999794e-4,
            messages: 27,
            words: 142,
            work: 4673,
            moved: 4,
            stages: 1,
            hash: 14084949599647279875,
        },
        Golden {
            workers: 2,
            refine: true,
            makespan: 2.02079999999997279e-3,
            messages: 86,
            words: 420,
            work: 10467,
            moved: 6,
            stages: 1,
            hash: 2910191017051003751,
        },
        Golden {
            workers: 4,
            refine: false,
            makespan: 6.91800000000000227e-4,
            messages: 81,
            words: 468,
            work: 5421,
            moved: 4,
            stages: 1,
            hash: 14084949599647279875,
        },
        Golden {
            workers: 4,
            refine: true,
            makespan: 1.73989999999999085e-3,
            messages: 258,
            words: 1326,
            work: 11697,
            moved: 6,
            stages: 1,
            hash: 2910191017051003751,
        },
    ];
    let (old, inc) = grid_scenario(8, 4, 20, 123);
    for g in &goldens {
        let (part, rep) = run_backend(Backend::SimCm5, &old, &inc, 4, g.workers, g.refine);
        let tag = format!("w={} refine={}", g.workers, g.refine);
        assert_eq!(rep.sim.makespan, g.makespan, "makespan drift: {tag}");
        assert_eq!(rep.sim.total_messages, g.messages, "message drift: {tag}");
        assert_eq!(rep.sim.total_words, g.words, "word drift: {tag}");
        assert_eq!(rep.sim.total_work, g.work, "work drift: {tag}");
        assert_eq!(rep.total_moved, g.moved, "{tag}");
        assert_eq!(rep.stages, g.stages, "{tag}");
        assert_eq!(assignment_hash(&part), g.hash, "partition drift: {tag}");
    }
}

#[test]
fn shared_mem_handles_orphan_clusters() {
    // The disconnected-growth edge case from the driver tests, on the
    // real backend: rank 0 decides, the broadcast replicates.
    let g = generators::path(6);
    let old = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
    let delta = GraphDelta {
        add_vertices: vec![1, 1],
        add_edges: vec![(6, 7, 1)], // disconnected pair
        ..Default::default()
    };
    let inc = delta.apply(&g);
    let cfg = IgpConfig::new(2).with_backend(Backend::SharedMem);
    let (part, rep) =
        ParallelPartitioner::new(cfg, 2, false, CostModel::cm5()).repartition(&inc, &old);
    assert!(rep.balanced);
    assert_eq!(part.counts().iter().sum::<u32>(), 8);
}

#[test]
fn shared_mem_wall_clock_phases_monotone() {
    let (old, inc) = grid_scenario(8, 4, 12, 7);
    let (_, rep) = run_backend(Backend::SharedMem, &old, &inc, 4, 2, true);
    // Wall-clock phase marks are cumulative per rank.
    assert!(rep.phases.assign >= 0.0);
    assert!(rep.phases.balance >= rep.phases.assign);
    assert!(rep.phases.refine >= rep.phases.balance);
    assert!(rep.sim.wall_seconds >= rep.sim.makespan);
}

/// The equivalence extends to deletions + growth mixes.
#[test]
fn backends_agree_on_deletion_mix() {
    let g = generators::grid(6, 6);
    let assign: Vec<PartId> = (0..36).map(|v| if v % 6 < 3 { 0 } else { 1 }).collect();
    let old = Partitioning::from_assignment(&g, 2, assign);
    let delta = GraphDelta {
        remove_vertices: vec![5, 11, 17],
        add_vertices: vec![1, 1],
        add_edges: vec![(0, 36, 1), (36, 37, 1)],
        remove_edges: vec![],
    };
    let inc = delta.apply(&g);
    let check = |g2: &CsrGraph, p: &Partitioning| {
        assert_eq!(p.counts().iter().sum::<u32>(), g2.num_vertices() as u32);
    };
    let (a, ra) = run_backend(Backend::SimCm5, &old, &inc, 2, 3, true);
    let (b, rb) = run_backend(Backend::SharedMem, &old, &inc, 2, 3, true);
    assert_eq!(a.assignment(), b.assignment());
    assert_eq!(ra.total_pivots, rb.total_pivots);
    check(inc.new_graph(), &a);
}
