//! Slowloris regression for the event-loop core (DESIGN.md §12).
//!
//! A client that trickles its request one byte at a time must (a) still
//! get a correct parse and reply — the framer is incremental, not
//! line-buffered-per-read — and (b) cost the daemon O(bytes) loop
//! wakeups, not a busy spin: under level-triggered polling a bug that
//! leaves readable interest armed on an unconsumable socket (or leaves
//! the waker pipe undrained) shows up as an unbounded
//! `loop_wakeups_total`.
//!
//! This suite deliberately lives in its own integration-test binary:
//! each test binary is its own process with its own global metrics
//! registry, so the wakeup counter here is driven by *this* traffic
//! only and the bound stays meaningful.

use igp::service::server::{serve, ServeOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Scrape one unlabeled sample out of a `METRICS` exposition.
fn scrape(text: &str, name: &str) -> Option<i64> {
    text.lines().find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        (n == name).then(|| v.trim().parse().ok())?
    })
}

fn metrics_text(addr: std::net::SocketAddr) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(b"METRICS\n").expect("write");
    let mut r = BufReader::new(conn);
    let mut text = String::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line).expect("read");
        if line.trim_end() == "END" {
            return text;
        }
        text.push_str(&line);
    }
}

#[test]
fn one_byte_at_a_time_client_parses_and_stays_cheap() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let addr = server.addr();

    // Trickle an OPEN (with its graph block) and a STAT, byte by byte.
    // 3 vertices in a path, 2 parts.
    let script = "OPEN slow parts=2\n3 2\n2\n1 3\n2\nEND\nSTAT slow\n";
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).expect("nodelay");
    for b in script.as_bytes() {
        conn.write_all(std::slice::from_ref(b)).expect("write byte");
        // A tiny pause defeats TCP segment coalescing often enough that
        // the framer sees many sub-line reads (exact segmentation is
        // not required for the assertion below).
        std::thread::sleep(Duration::from_micros(300));
    }
    let mut r = BufReader::new(&mut conn);
    let mut reply = String::new();
    r.read_line(&mut reply).expect("open reply");
    assert!(
        reply.starts_with("OK open sid=slow n=3 m=2 parts=2"),
        "trickled OPEN must parse correctly, got: {reply:?}"
    );
    reply.clear();
    r.read_line(&mut reply).expect("stat reply");
    assert!(
        reply.starts_with("OK stat sid=slow"),
        "pipelined-after-trickle STAT must work, got: {reply:?}"
    );
    drop(r);
    drop(conn);

    // The loop must have woken at most O(bytes written): every wakeup is
    // caused by readiness (one per delivered segment), a completion, or
    // a timer — never a spin. The script is ~45 bytes; give generous
    // headroom for connect/close/completion wakeups and scheduler
    // artifacts, while still catching a busy loop (which would log
    // thousands of wakeups during the ~14ms of trickling alone).
    let wakeups = scrape(&metrics_text(addr), "igp_service_loop_wakeups_total")
        .expect("loop_wakeups_total exposed");
    let bound = 4 * script.len() as i64 + 64;
    assert!(
        wakeups <= bound,
        "loop woke {wakeups} times for a {}-byte trickle (bound {bound}); \
         is readable interest being parked correctly?",
        script.len()
    );
}

#[test]
fn oversized_line_without_newline_drops_connection() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    // Stream > 1 MiB of newline-free garbage; the incremental cap must
    // kill the connection rather than buffer it forever.
    let chunk = vec![b'x'; 64 * 1024];
    let mut wrote = 0usize;
    let dropped = loop {
        match conn.write_all(&chunk) {
            Ok(()) => {
                wrote += chunk.len();
                if wrote > (1 << 20) + (1 << 21) {
                    break false; // daemon kept reading way past the cap
                }
            }
            Err(_) => break true,
        }
    };
    // Either the write side saw the reset, or the read side sees EOF
    // with no reply bytes.
    if !dropped {
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "daemon must close, not reply, on an unbounded line");
    }
}

#[test]
fn slow_graph_upload_respects_cap_incrementally() {
    let opts = ServeOptions {
        queue_cap: 8,
        ..ServeOptions::default()
    };
    let server = serve("127.0.0.1:0", opts).expect("bind");
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    conn.write_all(b"OPEN big parts=2\n").expect("header");
    // Feed graph-block lines forever; the 64 MiB upload cap must cut
    // the connection off without an unbounded buffer. Use a large
    // line so the test stays fast.
    let line = {
        let mut l = vec![b'9'; 1 << 19];
        l.push(b'\n');
        l
    };
    let mut wrote = 0usize;
    let killed = loop {
        match conn.write_all(&line) {
            Ok(()) => {
                wrote += line.len();
                if wrote > (64 << 20) + (64 << 20) {
                    break false;
                }
            }
            Err(_) => break true,
        }
    };
    if !killed {
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "daemon must drop an over-cap upload");
    }
}
