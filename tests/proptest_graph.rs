//! Property tests on the graph substrate: CSR invariants, delta
//! apply/diff inversion, BFS-owner verification, metric identities.

mod common;

use igp::graph::metrics::CutMetrics;
use igp::graph::traversal::{nearest_owner_bfs, verify_nearest_owner};
use igp::graph::{CsrGraph, NodeId, Partitioning};
use proptest::prelude::*;

/// Random simple undirected graph: spanning tree + `n` random chords.
fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| common::random_connected_graph(n, n, seed))
}

proptest! {
    #![proptest_config(common::tier1_config(128))]

    #[test]
    fn csr_structural_invariants(g in graph_strategy()) {
        g.validate().unwrap();
        // Handshake lemma.
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // undirected_edges yields each edge once.
        prop_assert_eq!(g.undirected_edges().count(), g.num_edges());
    }

    #[test]
    fn metis_roundtrip(g in graph_strategy()) {
        let text = igp::graph::io::write_metis(&g);
        let back = igp::graph::io::read_metis(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn delta_apply_then_diff_is_identity(g in graph_strategy(), seed in any::<u64>()) {
        let delta = igp::graph::generators::localized_growth_delta(&g, 0, 5, seed);
        let inc = delta.apply(&g);
        let d2 = inc.diff();
        // Re-applying the recovered diff reproduces the same new graph.
        let inc2 = d2.apply(&g);
        prop_assert_eq!(inc.new_graph(), inc2.new_graph());
    }

    #[test]
    fn nearest_owner_is_verified(g in graph_strategy(), k in 1usize..4) {
        let n = g.num_vertices();
        let seeds: Vec<(NodeId, u32)> =
            (0..k.min(n)).map(|i| ((i * n / k.min(n)) as NodeId, i as u32)).collect();
        let (owner, dist) = nearest_owner_bfs(&g, &seeds);
        prop_assert!(verify_nearest_owner(&g, &seeds, &owner, &dist));
    }

    #[test]
    fn cut_metric_identities(g in graph_strategy(), parts in 2usize..5, seed in any::<u64>()) {
        let n = g.num_vertices();
        let assign: Vec<u32> =
            (0..n).map(|v| (((v as u64).wrapping_mul(seed | 1) >> 7) % parts as u64) as u32).collect();
        let p = Partitioning::from_assignment(&g, parts, assign);
        let m = CutMetrics::compute(&g, &p);
        // Σ_q C(q) = 2 × total cut weight.
        prop_assert_eq!(m.sum_boundary(), 2 * m.total_cut_weight);
        // Per-part counts sum to n.
        let total: u32 = m.per_part.iter().map(|c| c.count).sum();
        prop_assert_eq!(total as usize, n);
        // max ≥ min, boundaries consistent with boundary_vertices.
        prop_assert!(m.max_boundary >= m.min_boundary);
        let bv = p.boundary_vertices(&g).len() as u32;
        let bv_sum: u32 = m.per_part.iter().map(|c| c.boundary_vertices).sum();
        prop_assert_eq!(bv, bv_sum);
    }

    #[test]
    fn moves_keep_partition_consistent(g in graph_strategy(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let mut p = Partitioning::round_robin(&g, 3);
        let mut rng = common::Lcg::new(seed);
        for _ in 0..10 {
            let v = rng.below(n) as NodeId;
            let to = rng.below(3) as u32;
            p.move_vertex(&g, v, to);
        }
        p.validate(&g).unwrap();
        let total: u32 = p.counts().iter().sum();
        prop_assert_eq!(total as usize, n);
    }

    #[test]
    fn induced_subgraph_edge_subset(g in graph_strategy()) {
        let n = g.num_vertices();
        let keep: Vec<NodeId> = (0..n as NodeId).filter(|v| v % 2 == 0).collect();
        if keep.len() >= 2 {
            let (sub, map) = g.induced_subgraph(&keep);
            sub.validate().unwrap();
            for (u, v, w) in sub.undirected_edges() {
                prop_assert_eq!(g.edge_weight(map[u as usize], map[v as usize]), Some(w));
            }
        }
    }
}
