//! Shared test support for the integration/property suites: the one LCG
//! scenario generator (previously copy-pasted per test file), seeded
//! graph/mesh fixtures, partition-invariant assertion helpers and the
//! pinned tier-1 proptest configuration.

// Each test binary includes this module and uses its own subset.
#![allow(dead_code)]

use igp::graph::{CsrGraph, NodeId, PartId, Partitioning};
use igp::mesh::Point;
use proptest::ProptestConfig;

/// The tier-1 proptest configuration: explicit case count, no shrinking
/// (the stub reproduces by seed), failures persisted to
/// `tests/regressions/` and replayed on every subsequent run.
pub fn tier1_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        max_shrink_iters: 0,
        failure_persistence: Some(std::path::PathBuf::from("tests/regressions")),
    }
}

/// The deterministic LCG every scenario generator derives randomness
/// from (Knuth's MMIX multiplier; high bits are the usable ones).
pub struct Lcg(u64);

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Lcg(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform draw from `0..bound`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() >> 33) as usize % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// Random connected simple graph: a random spanning tree (which keeps
/// most instances connected even after edits) plus `extra` random
/// chords, deduplicated.
pub fn random_connected_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = Lcg::new(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for v in 1..n {
        let u = rng.below(v);
        edges.push((u as NodeId, v as NodeId));
    }
    for _ in 0..extra {
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            let e = (a.min(b) as NodeId, a.max(b) as NodeId);
            if !edges.contains(&e) {
                edges.push(e);
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Slab partitioning by BFS order from vertex 0: contiguous, roughly
/// (not exactly) balanced — the shape RSB output has in practice.
pub fn bfs_slab_partitioning(g: &CsrGraph, parts: usize) -> Partitioning {
    let n = g.num_vertices();
    let order = igp::graph::traversal::bfs_order(g, 0);
    let mut assign = vec![0 as PartId; n];
    for (rank, &v) in order.iter().enumerate() {
        assign[v as usize] = ((rank * parts) / n) as PartId;
    }
    Partitioning::from_assignment(g, parts, assign)
}

/// Uniform random points in the unit square.
pub fn random_unit_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = Lcg::new(seed | 1);
    (0..n)
        .map(|_| Point::new(rng.unit_f64(), rng.unit_f64()))
        .collect()
}

/// Random transshipment instance over `p` partitions: a bidirected ring
/// plus random chords with random caps, and a random balanced surplus
/// vector — the structure of the paper's balance LP.
pub fn random_transshipment(p: usize, seed: u64) -> (usize, Vec<(usize, usize, i64)>, Vec<i64>) {
    let mut rng = Lcg::new(seed);
    let mut arcs = Vec::new();
    for i in 0..p {
        arcs.push((i, (i + 1) % p, (rng.below(12) + 1) as i64));
        arcs.push(((i + 1) % p, i, (rng.below(12) + 1) as i64));
    }
    for _ in 0..p {
        let a = rng.below(p);
        let b = rng.below(p);
        if a != b && !arcs.iter().any(|&(x, y, _)| x == a && y == b) {
            arcs.push((a, b, (rng.below(12) + 1) as i64));
        }
    }
    let mut surplus = vec![0i64; p];
    for _ in 0..2 * p {
        let a = rng.below(p);
        let b = rng.below(p);
        if a != b {
            surplus[a] += 1;
            surplus[b] -= 1;
        }
    }
    (p, arcs, surplus)
}

/// Invariants every valid partitioning of `g` satisfies: internal
/// consistency, every vertex assigned, counts summing to `|V|`.
pub fn assert_partition_invariants(g: &CsrGraph, part: &Partitioning) {
    part.validate(g).unwrap();
    assert_eq!(part.num_vertices(), g.num_vertices());
    let total: u32 = part.counts().iter().sum();
    assert_eq!(total as usize, g.num_vertices(), "counts must sum to |V|");
}

/// Balance within ±1 vertex of the average — what the paper's balance LP
/// guarantees whenever it reports success.
pub fn assert_balanced_within_one(part: &Partitioning, context: &str) {
    let max = *part.counts().iter().max().unwrap() as i64;
    let min = *part.counts().iter().min().unwrap() as i64;
    assert!(
        max - min <= 1,
        "{context}: counts {:?} spread more than 1",
        part.counts()
    );
}
