//! Smoke coverage for the `examples/`: each must compile and run to
//! successful completion. (The quickstart in `src/lib.rs` is further
//! covered as a doctest, so its `count_imbalance() < 1.02` claim is
//! asserted on every `cargo test` run.)
//!
//! One test drives all examples sequentially: concurrent `cargo run`
//! invocations would serialize on the build lock anyway.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "adaptive_refinement",
    "moving_window",
    "parallel_speedup",
    "partition_viz",
    "quickstart",
    "service_roundtrip",
    "severe_imbalance",
];

#[test]
fn examples_run_to_completion() {
    let cargo = env!("CARGO");
    // Build them all up front so per-example failures are run failures,
    // not compile failures.
    let build = Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .status()
        .expect("failed to spawn cargo");
    assert!(build.success(), "cargo build --examples failed");

    for example in EXAMPLES {
        let out = Command::new(cargo)
            .args(["run", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example {example}: {e}"));
        assert!(
            out.status.success(),
            "example `{example}` exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
    }
}
