//! Property tests: the dense simplex against the combinatorial
//! network-flow oracles on randomized instances of both paper LPs.

mod common;

use igp::lp::{flow, solve, LpModel};
use proptest::prelude::*;

/// Random transshipment instance: `p` partitions on a ring plus random
/// chords, random caps, random balanced surplus.
fn transshipment_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>, Vec<i64>)> {
    (3usize..8, any::<u64>()).prop_map(|(p, seed)| common::random_transshipment(p, seed))
}

fn balance_lp(p: usize, arcs: &[(usize, usize, i64)], surplus: &[i64]) -> LpModel {
    let mut m = LpModel::minimize(arcs.len());
    for (k, &(_, _, cap)) in arcs.iter().enumerate() {
        m.set_objective(k, 1.0);
        m.set_upper_bound(k, cap as f64);
    }
    for q in 0..p {
        let mut row = Vec::new();
        for (k, &(i, j, _)) in arcs.iter().enumerate() {
            if i == q {
                row.push((k, 1.0));
            } else if j == q {
                row.push((k, -1.0));
            }
        }
        m.add_eq(row, surplus[q] as f64);
    }
    m
}

proptest! {
    #![proptest_config(common::tier1_config(64))]

    /// Simplex and min-cost-flow agree on feasibility AND optimal value of
    /// the balance LP; simplex solutions are feasible and integral.
    #[test]
    fn simplex_matches_flow_oracle((p, arcs, surplus) in transshipment_strategy()) {
        let model = balance_lp(p, &arcs, &surplus);
        let oracle = flow::min_movement_transshipment(p, &arcs, &surplus);
        match solve(&model) {
            Ok(sol) => {
                let (cost, _) = oracle.expect("simplex feasible but oracle infeasible");
                prop_assert!((sol.objective - cost as f64).abs() < 1e-6,
                    "objective {} vs oracle {}", sol.objective, cost);
                model.check_feasible(&sol.x, 1e-6).unwrap();
                for &v in &sol.x {
                    prop_assert!((v - v.round()).abs() < 1e-6, "non-integral {v}");
                }
                // The bounded-variable solver must agree too.
                let bd = igp::lp::solve_bounded(&model).expect("bounded solver disagrees");
                prop_assert!((bd.objective - cost as f64).abs() < 1e-6,
                    "bounded objective {} vs oracle {}", bd.objective, cost);
                model.check_feasible(&bd.x, 1e-6).unwrap();
            }
            Err(igp::lp::LpError::Infeasible) => {
                prop_assert!(oracle.is_none(), "oracle feasible but simplex infeasible");
                prop_assert_eq!(
                    igp::lp::solve_bounded(&model).err(),
                    Some(igp::lp::LpError::Infeasible)
                );
            }
            Err(e) => return Err(TestCaseError::fail(format!("solver error {e}"))),
        }
    }

    /// Simplex and cycle-cancelling agree on the max-circulation value of
    /// the refinement LP.
    #[test]
    fn circulation_matches_oracle((p, arcs, _) in transshipment_strategy()) {
        let (oracle_total, _) = flow::max_circulation(p, &arcs);
        let mut m = LpModel::maximize(arcs.len());
        for (k, &(_, _, cap)) in arcs.iter().enumerate() {
            m.set_objective(k, 1.0);
            m.set_upper_bound(k, cap as f64);
        }
        for q in 0..p {
            let mut row = Vec::new();
            for (k, &(i, j, _)) in arcs.iter().enumerate() {
                if i == q { row.push((k, 1.0)); } else if j == q { row.push((k, -1.0)); }
            }
            if !row.is_empty() {
                m.add_eq(row, 0.0);
            }
        }
        let sol = solve(&m).unwrap();
        prop_assert!((sol.objective - oracle_total as f64).abs() < 1e-6,
            "simplex {} vs cycle-cancelling {}", sol.objective, oracle_total);
        m.check_feasible(&sol.x, 1e-6).unwrap();
    }

    /// Random small LPs: any returned optimum is primal feasible, and
    /// maximization/minimization are consistent under objective negation.
    #[test]
    fn sense_negation_consistency(
        n in 1usize..5,
        coeffs in prop::collection::vec(-5.0f64..5.0, 1..5),
        rhs in prop::collection::vec(0.5f64..10.0, 1..5),
    ) {
        let mut maxm = LpModel::maximize(n);
        let mut minm = LpModel::minimize(n);
        for i in 0..n {
            let c = coeffs[i % coeffs.len()];
            maxm.set_objective(i, c);
            minm.set_objective(i, -c);
            maxm.set_upper_bound(i, 7.0);
            minm.set_upper_bound(i, 7.0);
        }
        for (r, &b) in rhs.iter().enumerate() {
            let row: Vec<(usize, f64)> =
                (0..n).map(|i| (i, 1.0 + ((r + i) % 3) as f64)).collect();
            maxm.add_le(row.clone(), b * n as f64);
            minm.add_le(row, b * n as f64);
        }
        let a = solve(&maxm).unwrap();
        let b = solve(&minm).unwrap();
        prop_assert!((a.objective + b.objective).abs() < 1e-6,
            "max {} vs -min {}", a.objective, -b.objective);
        maxm.check_feasible(&a.x, 1e-6).unwrap();
    }
}
