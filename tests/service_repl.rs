//! Replication + failover end to end over real TCP: a primary daemon
//! journals sessions, a follower daemon (`follow` mode) bootstraps
//! them via `REPL SYNC`, tails their WALs via `REPL FRAME`, serves
//! read-only replicas, and takes over — manually (`PROMOTE`) or on
//! heartbeat timeout — answering `PART` bit-identically to a
//! single-threaded replay twin that never saw a crash.
//!
//! (The kill -9 variant of the drill runs in CI's `failover` job
//! against the release binaries; in-process we crash the primary by
//! dropping its handle, which leaves the same wire-visible state: the
//! follower's connection dies and its heartbeats start failing.)

use igp::graph::{generators, CsrGraph, GraphDelta};
use igp::service::client::IgpClient;
use igp::service::server::{serve, ServeOptions};
use igp::service::session::{InitPartition, ServiceSession, SessionConfig};
use igp::service::{ClientError, SnapshotPolicy};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("igp-repl-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn primary_opts(data_dir: &std::path::Path, snap: SnapshotPolicy) -> ServeOptions {
    ServeOptions {
        shards: 4,
        data_dir: Some(data_dir.to_path_buf()),
        snapshot_policy: snap,
        ..Default::default()
    }
}

fn follower_opts(
    data_dir: &std::path::Path,
    primary: std::net::SocketAddr,
    failover: Option<Duration>,
) -> ServeOptions {
    ServeOptions {
        shards: 4,
        data_dir: Some(data_dir.to_path_buf()),
        snapshot_policy: SnapshotPolicy::EveryK(4),
        follow: Some(primary.to_string()),
        repl_interval: Duration::from_millis(15),
        failover,
        ..Default::default()
    }
}

fn scenario(i: usize) -> (CsrGraph, SessionConfig, Vec<GraphDelta>) {
    let base = generators::grid(6 + i, 6);
    let mut cfg = SessionConfig::new(2 + i % 2);
    cfg.init = InitPartition::RoundRobin;
    cfg.policy = ["every:1", "every:3", "cost"][i % 3].parse().unwrap();
    let mut mirror = base.clone();
    let mut deltas = Vec::new();
    for k in 0..12 {
        let d = generators::random_churn_delta(&mirror, 2, 1, (i as u64) << 32 | k);
        mirror = d.apply(&mirror).new_graph().clone();
        deltas.push(d);
    }
    (base, cfg, deltas)
}

/// Single-threaded ground truth over the same prefix.
fn replay(base: &CsrGraph, cfg: &SessionConfig, deltas: &[GraphDelta]) -> ServiceSession {
    let mut s = ServiceSession::open(base.clone(), cfg.clone());
    for d in deltas {
        s.ingest(d).expect("replay ingest");
    }
    s
}

/// Poll until `f` returns true (replication is asynchronous by
/// design); panics with `what` after 15s.
fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for: {what}");
}

/// True once the follower serves `sid` with the same partition, step
/// count and pending queue as the primary.
fn caught_up(fol: &mut IgpClient, pri: &mut IgpClient, sid: &str) -> bool {
    let (Ok(fs), Ok(ps)) = (fol.stat(sid), pri.stat(sid)) else {
        return false;
    };
    if (fs.steps, fs.pending) != (ps.steps, ps.pending) {
        return false;
    }
    match (fol.partition(sid), pri.partition(sid)) {
        (Ok(f), Ok(p)) => f == p,
        _ => false,
    }
}

/// The full drill: replicate two tenants, verify the read-replica
/// contract, kill the primary mid-batch (one delta still queued),
/// promote, and diff against the never-crashed replay twin.
#[test]
fn follower_replicates_promotes_and_serves_bit_identical() {
    let dir_a = scratch_dir("drill-primary");
    let dir_b = scratch_dir("drill-follower");
    const TENANTS: usize = 2;
    const BEFORE: usize = 9; // deltas before the crash

    let primary = serve(
        "127.0.0.1:0",
        primary_opts(&dir_a, SnapshotPolicy::EveryK(4)),
    )
    .expect("bind primary");
    let mut cli_p = IgpClient::connect(primary.addr()).expect("connect primary");
    for i in 0..TENANTS {
        let (base, cfg, deltas) = scenario(i);
        let sid = format!("t{i}");
        cli_p.open(&sid, &base, &cfg).expect("open");
        for d in &deltas[..BEFORE] {
            cli_p.delta(&sid, d).expect("delta");
        }
    }

    // The follower comes up *after* traffic exists: bootstrap is a
    // full REPL SYNC, later deltas arrive as REPL FRAMEs.
    let follower =
        serve("127.0.0.1:0", follower_opts(&dir_b, primary.addr(), None)).expect("bind follower");
    let mut cli_f = IgpClient::connect(follower.addr()).expect("connect follower");
    for i in 0..TENANTS {
        let sid = format!("t{i}");
        wait_until(&format!("follower catch-up on {sid}"), || {
            caught_up(&mut cli_f, &mut cli_p, &sid)
        });
    }

    // Read-replica contract: reads answer with role=follower, every
    // write verb is a typed refusal.
    let stat = cli_f.stat("t0").expect("follower stat");
    assert_eq!(stat.role.as_deref(), Some("follower"));
    let stat = cli_p.stat("t0").expect("primary stat");
    assert_eq!(stat.role.as_deref(), Some("primary"));
    let (base0, cfg0, deltas0) = scenario(0);
    for err in [
        cli_f.delta("t0", &deltas0[BEFORE]).expect_err("read-only"),
        cli_f.flush("t0").map(|_| ()).expect_err("read-only"),
        cli_f.close("t0").expect_err("read-only"),
        cli_f
            .open("fresh", &base0, &cfg0)
            .map(|_| ())
            .expect_err("read-only"),
    ] {
        match err {
            ClientError::Server { ref kind, .. } => assert_eq!(kind, "read-only"),
            other => panic!("expected typed read-only refusal, got {other:?}"),
        }
    }

    // More primary traffic, paced one delta per catch-up so the
    // incremental `REPL FRAME` path is what ships it — a tight burst
    // would finish (and rotate the WAL) inside one poll interval and
    // the follower would catch up by full resync instead.
    for i in 0..TENANTS {
        let (_, _, deltas) = scenario(i);
        let sid = format!("t{i}");
        for d in &deltas[BEFORE..] {
            cli_p.delta(&sid, d).expect("late delta");
            wait_until(&format!("follower tails {sid}"), || {
                caught_up(&mut cli_f, &mut cli_p, &sid)
            });
        }
    }

    // Crash the primary. The follower is promoted by hand.
    drop(cli_p);
    drop(primary);
    assert!(cli_f.promote().expect("promote"), "was a follower");
    assert!(!cli_f.promote().expect("re-promote"), "now idempotent");

    for i in 0..TENANTS {
        let (base, cfg, deltas) = scenario(i);
        let sid = format!("t{i}");
        let truth = replay(&base, &cfg, &deltas);
        let stat = cli_f.stat(&sid).expect("promoted stat");
        assert_eq!(stat.role.as_deref(), Some("primary"));
        assert_eq!(stat.steps, truth.steps(), "{sid}: steps diverged");
        assert_eq!(
            stat.pending,
            truth.inner().pending_deltas(),
            "{sid}: pending queue diverged"
        );
        assert_eq!(
            cli_f.partition(&sid).expect("part"),
            truth.assignment(),
            "{sid}: promoted partition differs from never-crashed replay"
        );
    }

    // The promoted daemon accepts writes and keeps matching the twin.
    let (base, cfg, _) = scenario(0);
    let extra = generators::localized_growth_delta(
        replay(&base, &cfg, &scenario(0).2).inner().graph(),
        0,
        3,
        7,
    );
    cli_f.delta("t0", &extra).expect("write after promotion");
    let mut truth = replay(&base, &cfg, &scenario(0).2);
    truth.ingest(&extra).expect("truth extra");
    assert_eq!(cli_f.partition("t0").expect("part"), truth.assignment());

    // The replication metrics moved: frames were shipped and applied.
    let text = cli_f.metrics().expect("metrics");
    let applied = text
        .lines()
        .find(|l| l.starts_with("igp_service_repl_frames_total{dir=\"applied\"}"))
        .expect("applied-frames counter exported");
    let v: u64 = applied.split_whitespace().last().unwrap().parse().unwrap();
    assert!(v > 0, "follower applied no frames: {applied}");
    // `>= 1`, not `== 1`: the metrics registry is process-global and
    // other tests in this binary promote their own followers.
    let promoted = text
        .lines()
        .find(|l| l.starts_with("igp_service_promotions_total"))
        .expect("promotions counter exported");
    let v: u64 = promoted.split_whitespace().last().unwrap().parse().unwrap();
    assert!(v >= 1, "promotion not counted: {promoted}");

    cli_f.shutdown().expect("shutdown");
    follower.wait();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Heartbeat failover: with `failover` set, losing the primary flips
/// the follower to primary on its own — no operator in the loop.
#[test]
fn follower_auto_promotes_on_heartbeat_timeout() {
    let dir_a = scratch_dir("auto-primary");
    let dir_b = scratch_dir("auto-follower");
    let (base, cfg, deltas) = scenario(1);

    let primary = serve(
        "127.0.0.1:0",
        primary_opts(&dir_a, SnapshotPolicy::EveryK(4)),
    )
    .expect("bind primary");
    let mut cli_p = IgpClient::connect(primary.addr()).expect("connect");
    cli_p.open("s", &base, &cfg).expect("open");
    for d in &deltas[..6] {
        cli_p.delta("s", d).expect("delta");
    }

    let follower = serve(
        "127.0.0.1:0",
        follower_opts(&dir_b, primary.addr(), Some(Duration::from_millis(250))),
    )
    .expect("bind follower");
    let mut cli_f = IgpClient::connect(follower.addr()).expect("connect follower");
    wait_until("follower catch-up", || {
        caught_up(&mut cli_f, &mut cli_p, "s")
    });

    drop(cli_p);
    drop(primary); // heartbeats start failing now
    wait_until("auto-promotion", || {
        cli_f
            .stat("s")
            .is_ok_and(|s| s.role.as_deref() == Some("primary"))
    });

    // Promoted on its own: serves the replay-twin state and takes writes.
    let truth = replay(&base, &cfg, &deltas[..6]);
    assert_eq!(cli_f.partition("s").expect("part"), truth.assignment());
    cli_f.delta("s", &deltas[6]).expect("write after failover");

    cli_f.shutdown().expect("shutdown");
    follower.wait();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Rotation under the follower's cursor: a snapshot-happy primary
/// (`EveryK(1)`) rotates its WAL on every record, so frame cursors go
/// stale immediately and every catch-up is a `repl-stale` → full
/// resync round trip. The replica must still converge bit-identically.
#[test]
fn log_rotation_under_cursor_forces_resync_and_converges() {
    let dir_a = scratch_dir("stale-primary");
    let dir_b = scratch_dir("stale-follower");
    let (base, cfg, deltas) = scenario(0); // every:1 — every delta applies

    let primary = serve(
        "127.0.0.1:0",
        primary_opts(&dir_a, SnapshotPolicy::EveryK(1)),
    )
    .expect("bind primary");
    let mut cli_p = IgpClient::connect(primary.addr()).expect("connect");
    cli_p.open("r", &base, &cfg).expect("open");
    let follower =
        serve("127.0.0.1:0", follower_opts(&dir_b, primary.addr(), None)).expect("bind follower");
    let mut cli_f = IgpClient::connect(follower.addr()).expect("connect follower");

    // Interleave primary writes with follower polls so cursors keep
    // going stale mid-stream.
    for d in &deltas {
        cli_p.delta("r", d).expect("delta");
        std::thread::sleep(Duration::from_millis(5));
    }
    wait_until("converged through repeated resyncs", || {
        caught_up(&mut cli_f, &mut cli_p, "r")
    });
    let truth = replay(&base, &cfg, &deltas);
    assert_eq!(cli_f.partition("r").expect("part"), truth.assignment());

    cli_p.shutdown().expect("shutdown primary");
    primary.wait();
    drop(follower);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// A `CLOSE` on the primary propagates: the follower drops the session
/// and deletes its replica directory instead of serving deleted state.
#[test]
fn close_on_primary_propagates_to_follower() {
    let dir_a = scratch_dir("close-primary");
    let dir_b = scratch_dir("close-follower");
    let (base, cfg, deltas) = scenario(2);

    let primary = serve(
        "127.0.0.1:0",
        primary_opts(&dir_a, SnapshotPolicy::EveryK(4)),
    )
    .expect("bind primary");
    let mut cli_p = IgpClient::connect(primary.addr()).expect("connect");
    cli_p.open("c", &base, &cfg).expect("open");
    for d in &deltas[..4] {
        cli_p.delta("c", d).expect("delta");
    }
    let follower =
        serve("127.0.0.1:0", follower_opts(&dir_b, primary.addr(), None)).expect("bind follower");
    let mut cli_f = IgpClient::connect(follower.addr()).expect("connect follower");
    wait_until("replica exists", || {
        cli_f.list().is_ok_and(|ids| ids.contains(&"c".to_string()))
    });
    assert!(dir_b.join("c").exists(), "replica directory materialized");
    cli_p.close("c").expect("close on primary");
    wait_until("replica dropped", || {
        cli_f.list().is_ok_and(|ids| ids.is_empty())
    });
    wait_until("replica directory deleted", || !dir_b.join("c").exists());

    cli_p.shutdown().expect("shutdown primary");
    primary.wait();
    let _ = follower; // dropped: joins the replication thread too
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Follower mode without a data directory is a misconfiguration the
/// daemon refuses at boot, not a silent memory-only replica.
#[test]
fn follower_without_data_dir_is_refused() {
    let err = serve(
        "127.0.0.1:0",
        ServeOptions {
            follow: Some("127.0.0.1:1".into()),
            ..Default::default()
        },
    )
    .err()
    .expect("must not bind");
    assert!(err.to_string().contains("data_dir"), "{err}");
}
