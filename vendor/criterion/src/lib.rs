//! Offline stand-in for `criterion` — runs each registered benchmark a
//! configurable number of samples, and prints min/median/mean wall time
//! per benchmark. No statistical analysis, outlier rejection or HTML
//! reports; the point is that `cargo bench` compiles and produces
//! comparable one-line numbers in this offline environment.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_iters: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples with time-based warm-up;
        // fixed small counts keep `cargo bench` minutes-scale on the
        // heavier partitioner benches.
        Criterion {
            sample_size: 10,
            warm_up_iters: 1,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, self.warm_up_iters, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_iters: 1,
        }
    }
}

pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_iters: usize,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, self.warm_up_iters, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one sample of `f`. The closure's output is `black_box`ed so
    /// the measured work is not optimized away.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F>(id: &str, sample_size: usize, warm_up_iters: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut warm = Bencher {
        samples: Vec::new(),
    };
    for _ in 0..warm_up_iters {
        f(&mut warm);
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{id:<48} (no samples: bench closure never called iter)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// `criterion_group!(name, target…)` — a function running every target
/// against a default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group…)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
