//! Offline stand-in for `crossbeam` — `channel::unbounded` (over
//! `std::sync::mpsc`) and `thread::scope` (over `std::thread::scope`),
//! which is all the SPMD runtime uses.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// Multi-producer sender; clones share one unbounded queue.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    use std::any::Any;

    /// Handle to the enclosing scope, passed to every spawned closure
    /// (crossbeam's signature; the runtime ignores it).
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = *self;
            ScopedJoinHandle(self.0.spawn(move || f(&inner)))
        }
    }

    /// Run `f` with a scope that joins all still-running children before
    /// returning. Always `Ok`: each child's panic payload is surfaced
    /// through its own `join()`, matching how the runtime re-raises them.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_with_clone() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = channel::unbounded::<u32>();
        let err = rx.recv_timeout(std::time::Duration::from_millis(10));
        assert!(err.is_err());
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn scope_child_panic_payload_via_join() {
        let caught = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(caught.is_err());
    }
}
