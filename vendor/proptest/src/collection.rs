//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::ops::Range;

/// Element-count specification for collection strategies: a fixed size
/// or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange(r)
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.0.len() == 1 {
            self.size.0.start
        } else {
            rng.gen_range(self.size.0.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
