//! Offline stand-in for `proptest` — deterministic property testing with
//! the API surface this workspace uses.
//!
//! Differences from upstream, by design (see `vendor/README.md`):
//!
//! * **Deterministic seeding.** Case seeds derive from a stable FNV hash
//!   of `(source file, test name, case index)` — every run, machine and
//!   CI job executes the identical case sequence. Set the
//!   `PROPTEST_BASE_SEED` env var (decimal or `0x…`) to explore a
//!   different sequence locally.
//! * **No shrinking.** On failure the offending seed is reported and
//!   persisted; `max_shrink_iters` is accepted for config compatibility
//!   but inert. With deterministic generation the seed alone reproduces
//!   the exact inputs.
//! * **Failure persistence** writes `<test name> <seed-hex>` lines to
//!   `<failure_persistence>/<source file stem>.txt`; persisted seeds are
//!   replayed *before* the regular cases on every subsequent run, so a
//!   once-seen regression stays covered until the line is removed.

use rand::{RngCore, SeedableRng};
use std::io::Write as _;
use std::path::{Path, PathBuf};

pub mod collection;
pub mod strategy;

pub use strategy::{any, Any, Arbitrary, Just, Map, Strategy};

/// Modules re-exported under the `prop::` prefix, as upstream does.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// The RNG handed to strategies. A thin wrapper over the workspace
/// `rand` stub so strategies and user code share one generator type.
pub struct TestRng(rand::StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(rand::StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated input was rejected (not counted as a failure).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Field names match upstream where the concept
/// exists; `failure_persistence` is a plain directory path here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for upstream compatibility; this stub does not shrink.
    pub max_shrink_iters: u32,
    /// Directory receiving `<file stem>.txt` regression-seed files, or
    /// `None` to disable persistence.
    pub failure_persistence: Option<PathBuf>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            failure_persistence: Some(PathBuf::from("tests/regressions")),
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn base_seed(file: &str, name: &str) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_BASE_SEED") {
        let v = v.trim();
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse().ok()
        };
        if let Some(s) = parsed {
            return s;
        }
        eprintln!("[proptest-stub] ignoring unparsable PROPTEST_BASE_SEED={v:?}");
    }
    fnv1a(name.as_bytes(), fnv1a(file.as_bytes(), FNV_OFFSET))
}

fn regression_path(dir: &Path, file: &str) -> PathBuf {
    let stem = Path::new(file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    dir.join(format!("{stem}.txt"))
}

fn load_regression_seeds(dir: &Path, file: &str, name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regression_path(dir, file)) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() == Some(name) {
            if let Some(seed) = parts
                .next()
                .and_then(|s| s.strip_prefix("0x"))
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            {
                seeds.push(seed);
            }
        }
    }
    seeds
}

fn persist_seed(dir: &Path, file: &str, name: &str, seed: u64) {
    if load_regression_seeds(dir, file, name).contains(&seed) {
        return;
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[proptest-stub] cannot create {}: {e}", dir.display());
        return;
    }
    let path = regression_path(dir, file);
    let res = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{name} {seed:#018x}"));
    match res {
        Ok(()) => eprintln!(
            "[proptest-stub] persisted failing seed to {}",
            path.display()
        ),
        Err(e) => eprintln!("[proptest-stub] cannot write {}: {e}", path.display()),
    }
}

/// Drive one property: replay persisted regression seeds, then run
/// `config.cases` fresh cases. Panics (failing the enclosing `#[test]`)
/// on the first failing case, after persisting its seed.
pub fn run_proptest<F>(config: &ProptestConfig, file: &'static str, name: &'static str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let persist_dir = config.failure_persistence.as_deref();
    let mut rejected = 0u64;

    let mut run_case = |seed: u64, label: &str| {
        // Panics inside the property (e.g. `unwrap`/`assert!` helpers, as
        // opposed to `prop_assert!`) must also persist the seed before the
        // test fails, so the regression replays on the next run.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = TestRng::from_seed(seed);
            body(&mut rng)
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(_))) => rejected += 1,
            Ok(Err(TestCaseError::Fail(reason))) => {
                if let Some(dir) = persist_dir {
                    persist_seed(dir, file, name, seed);
                }
                panic!(
                    "[proptest-stub] property `{name}` falsified ({label}, seed {seed:#018x}):\n{reason}\n\
                     (re-run deterministically reproduces this; the seed was persisted for replay)"
                );
            }
            Err(payload) => {
                if let Some(dir) = persist_dir {
                    persist_seed(dir, file, name, seed);
                }
                eprintln!(
                    "[proptest-stub] property `{name}` panicked ({label}, seed {seed:#018x}); \
                     the seed was persisted for replay"
                );
                std::panic::resume_unwind(payload);
            }
        }
    };

    if let Some(dir) = persist_dir {
        for seed in load_regression_seeds(dir, file, name) {
            run_case(seed, "persisted regression");
        }
    }

    let base = base_seed(file, name);
    for case in 0..config.cases as u64 {
        // SplitMix-style spreading decorrelates consecutive case seeds.
        let mut seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        seed ^= seed >> 29;
        run_case(seed, &format!("case {case}/{}", config.cases));
    }

    if rejected > config.cases as u64 / 2 {
        eprintln!("[proptest-stub] warning: `{name}` rejected {rejected} inputs");
    }
}

/// `proptest! { … }` — expands each `fn name(pat in strategy, …) { … }`
/// item into a `#[test]` driving [`run_proptest`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[doc = $doc:expr])*
     #[test]
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            $crate::run_proptest(&__config, file!(), stringify!($name), |__rng| {
                let ($($pat,)+) =
                    $crate::strategy::StrategyTuple::generate_tuple(&__strategies, __rng);
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, …)` — returns a
/// [`TestCaseError::Fail`] from the enclosing property on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l, __r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n{}",
            __l, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyTuple;

    fn no_persist(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            failure_persistence: None,
            ..ProptestConfig::default()
        }
    }

    #[test]
    fn case_sequence_is_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            run_proptest(&no_persist(16), "f.rs", "t", |rng| {
                seen.push(rng.next_u64());
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
        assert_eq!(collect().len(), 16);
    }

    #[test]
    fn strategies_generate_in_domain() {
        run_proptest(&no_persist(64), "f.rs", "domains", |rng| {
            let (n, x, v) = (
                3usize..8,
                any::<u64>(),
                collection::vec(0u32..10, 1..5usize),
            )
                .generate_tuple(rng);
            assert!((3..8).contains(&n));
            let _ = x;
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
            Ok(())
        });
    }

    #[test]
    fn prop_map_composes() {
        let doubled = (1usize..10).prop_map(|v| v * 2);
        run_proptest(&no_persist(32), "f.rs", "map", |rng| {
            let even = doubled.generate(rng);
            assert!(even % 2 == 0 && (2..20).contains(&even));
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_seed() {
        run_proptest(&no_persist(8), "f.rs", "fails", |rng| {
            let v = rng.next_u64();
            if v % 2 == 0 || v % 2 == 1 {
                return Err(TestCaseError::fail("always"));
            }
            Ok(())
        });
    }

    #[test]
    fn persistence_roundtrip_and_replay() {
        let dir = std::env::temp_dir().join(format!("proptest-stub-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        persist_seed(&dir, "tests/sample.rs", "prop_x", 0xDEAD_BEEF);
        persist_seed(&dir, "tests/sample.rs", "prop_x", 0xDEAD_BEEF); // dedup
        persist_seed(&dir, "tests/sample.rs", "prop_y", 0x1234);
        assert_eq!(
            load_regression_seeds(&dir, "tests/sample.rs", "prop_x"),
            vec![0xDEAD_BEEF]
        );
        assert_eq!(
            load_regression_seeds(&dir, "tests/sample.rs", "prop_y"),
            vec![0x1234]
        );
        // Replayed seeds run before fresh cases.
        let cfg = ProptestConfig {
            cases: 1,
            failure_persistence: Some(dir.clone()),
            ..ProptestConfig::default()
        };
        let mut first_seed = None;
        run_proptest(&cfg, "tests/sample.rs", "prop_x", |rng| {
            if first_seed.is_none() {
                first_seed = Some(rng.next_u64());
            }
            Ok(())
        });
        let expect = TestRng::from_seed(0xDEAD_BEEF).next_u64();
        assert_eq!(first_seed, Some(expect));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
