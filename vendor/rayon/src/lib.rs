//! Offline stand-in for `rayon` — indexed data parallelism over slices
//! with the `par_iter().enumerate().map(..).collect()` shape this
//! workspace uses. Work is split into contiguous chunks across
//! `std::thread::available_parallelism()` scoped OS threads, and
//! `collect::<Vec<_>>()` preserves input order, matching rayon's
//! indexed-iterator semantics.

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// The one chunked execution driver behind every consuming adapter
/// (`collect`, `for_each`): split `0..n` into at most
/// `available_parallelism()` contiguous chunks and run `body` once per
/// chunk on a scoped thread. One spawn per *chunk*, never per item, so
/// cheap per-item closures don't pay per-spawn overhead. Per-chunk
/// outputs come back in index order.
fn run_chunked<R, F>(n: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n);
    if workers <= 1 || n <= 1 {
        return vec![body(0..n)];
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let body = &body;
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                scope.spawn(move || body(start..end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-stub worker panicked"))
            .collect()
    })
}

/// An indexed parallel pipeline: every stage can produce item `i`
/// independently, so execution chunks the index space across threads.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce item `i`. Must be safe to call concurrently for distinct
    /// indices (stages hold only `Sync` state).
    fn get(&self, i: usize) -> Self::Item;

    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { inner: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Consume the pipeline for side effects, chunked across worker
    /// threads like `collect` (matching rayon's indexed semantics: `f`
    /// runs exactly once per index, concurrency only across chunks).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let it = &self;
        run_chunked(it.len(), |range| {
            for i in range {
                f(it.get(i));
            }
        });
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn get(&self, i: usize) -> &'a T {
        &self.items[i]
    }
}

pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, i: usize) -> (usize, I::Item) {
        (i, self.inner.get(i))
    }
}

pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, O, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync,
{
    type Item = O;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, i: usize) -> O {
        (self.f)(self.inner.get(i))
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Vec<T> {
        let n = it.len();
        let it = &it;
        let mut parts: Vec<Vec<T>> =
            run_chunked(n, |range| range.map(|i| it.get(i)).collect::<Vec<T>>());
        let mut out = Vec::with_capacity(n);
        for p in &mut parts {
            out.append(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_align() {
        let v = vec!["a", "b", "c", "d", "e"];
        let out: Vec<(usize, usize)> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| (i, s.len()))
            .collect();
        assert_eq!(out, vec![(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn for_each_visits_every_index_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let v: Vec<usize> = (0..10_000).collect();
        let hits: Vec<AtomicUsize> = (0..v.len()).map(|_| AtomicUsize::new(0)).collect();
        v.par_iter().enumerate().for_each(|(i, &x)| {
            assert_eq!(i, x, "index/item alignment through chunking");
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunked_collect_order_pinned_at_chunk_boundaries() {
        // Sizes straddling chunk boundaries for any worker count: output
        // order must stay exactly the input order.
        for n in [0usize, 1, 2, 3, 7, 63, 64, 65, 1001] {
            let v: Vec<usize> = (0..n).collect();
            let out: Vec<usize> = v.par_iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, (0..n).map(|x| x * 3 + 1).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn for_each_empty_is_noop() {
        let empty: Vec<u32> = Vec::new();
        empty.par_iter().for_each(|_| panic!("must not run"));
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
