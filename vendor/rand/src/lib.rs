//! Offline stand-in for the `rand` crate — just the surface this
//! workspace uses (`StdRng`, `SeedableRng`, `Rng::{gen, gen_range,
//! gen_bool}`), backed by a SplitMix64 core. The stream differs from
//! upstream `rand`; everything seeded here is seeded explicitly, so
//! only reproducibility-within-this-workspace matters.

pub mod rngs {
    pub use crate::StdRng;
}

/// SplitMix64: tiny, fast, passes BigCrush on its 64-bit output, and —
/// unlike upstream's ChaCha-based `StdRng` — fits in one `u64` of state.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One burn-in step decorrelates small consecutive seeds.
        let mut state = seed ^ 0x5DEE_CE66_D613_1A87;
        let _ = splitmix64(&mut state);
        StdRng { state }
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`rng.gen::<T>()`): full range for integers, `[0, 1)` for floats.
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `rng.gen_range(..)`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sampling would be overkill here; plain
/// multiply-shift keeps bias below 2⁻³² for the small bounds we use.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain range (e.g. 0..=u64::MAX): span wrapped.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_high = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            seen_high |= f > 0.5;
        }
        assert!(seen_high);
    }

    #[test]
    fn clone_forks_identical_stream() {
        let mut a = StdRng::seed_from_u64(3);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
